package formula_test

// Differential test of the interned integer/bitset DNF kernel against a
// direct transcription of the original string-keyed kernel. The reference
// engine below re-implements the pre-interning semantics literally —
// key-sorted literal lists, string-key merges, joined-key identities, the
// exact reduce/subsume tie-breaks, and Fig 8's toDNF/simplify/dropk order —
// and every kernel operation is required to agree with it on BOTH the
// denotation and the canonical (byte-identical) output order, over both
// production theories.

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tracer/internal/escape"
	"tracer/internal/formula"
	"tracer/internal/typestate"
)

// ---------------------------------------------------------------------------
// Reference engine: the seed string-keyed kernel, transcribed.

type refConj struct {
	lits []formula.Lit
	keys []string
	key  string
}

type refDNF []refConj

func refMk(lits []formula.Lit, keys []string) refConj {
	return refConj{lits: lits, keys: keys, key: strings.Join(keys, "&")}
}

func refNewConj(lits ...formula.Lit) refConj {
	ls := append([]formula.Lit(nil), lits...)
	keys := make([]string, len(ls))
	for i, l := range ls {
		keys[i] = l.Key()
	}
	sort.Sort(&refSorter{ls, keys})
	outL, outK := ls[:0], keys[:0]
	for i := range ls {
		if i > 0 && keys[i] == outK[len(outK)-1] {
			continue
		}
		outL = append(outL, ls[i])
		outK = append(outK, keys[i])
	}
	return refMk(outL, outK)
}

type refSorter struct {
	lits []formula.Lit
	keys []string
}

func (s *refSorter) Len() int           { return len(s.lits) }
func (s *refSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *refSorter) Swap(i, j int) {
	s.lits[i], s.lits[j] = s.lits[j], s.lits[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func (c refConj) eval(ev func(formula.Lit) bool) bool {
	for _, l := range c.lits {
		if !ev(l) {
			return false
		}
	}
	return true
}

func (d refDNF) eval(ev func(formula.Lit) bool) bool {
	for _, c := range d {
		if c.eval(ev) {
			return true
		}
	}
	return false
}

func refMerge(c, d refConj) (lits []formula.Lit, keys []string) {
	i, j := 0, 0
	for i < len(c.lits) && j < len(d.lits) {
		switch {
		case c.keys[i] < d.keys[j]:
			lits, keys = append(lits, c.lits[i]), append(keys, c.keys[i])
			i++
		case c.keys[i] > d.keys[j]:
			lits, keys = append(lits, d.lits[j]), append(keys, d.keys[j])
			j++
		default:
			lits, keys = append(lits, c.lits[i]), append(keys, c.keys[i])
			i++
			j++
		}
	}
	for ; i < len(c.lits); i++ {
		lits, keys = append(lits, c.lits[i]), append(keys, c.keys[i])
	}
	for ; j < len(d.lits); j++ {
		lits, keys = append(lits, d.lits[j]), append(keys, d.keys[j])
	}
	return lits, keys
}

func refUnsat(lits []formula.Lit, th formula.Theory) bool {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			a, b := lits[i], lits[j]
			if a.Neg != b.Neg && a.P == b.P {
				return true
			}
			if th.Contradicts(a, b) || th.Contradicts(b, a) {
				return true
			}
		}
	}
	return false
}

func refReduce(lits []formula.Lit, keys []string, th formula.Theory) ([]formula.Lit, []string) {
	if len(lits) < 2 {
		return lits, keys
	}
	drop := make([]bool, len(lits))
	any := false
	for i, li := range lits {
		for j, lj := range lits {
			if i == j || keys[i] == keys[j] {
				continue
			}
			if th.Implies(lj, li) && (!th.Implies(li, lj) || j < i) {
				drop[i] = true
				any = true
				break
			}
		}
	}
	if !any {
		return lits, keys
	}
	var outL []formula.Lit
	var outK []string
	for i := range lits {
		if !drop[i] {
			outL = append(outL, lits[i])
			outK = append(outK, keys[i])
		}
	}
	return outL, outK
}

func refImplies(c, d refConj, th formula.Theory) bool {
	for j, ld := range d.lits {
		ok := false
		for i, lc := range c.lits {
			if c.keys[i] == d.keys[j] || th.Implies(lc, ld) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func refOr(d, e refDNF, th formula.Theory) refDNF {
	out := make(refDNF, 0, len(d)+len(e))
	seen := make(map[string]bool)
	for _, c := range append(append(refDNF{}, d...), e...) {
		if refUnsat(c.lits, th) {
			continue
		}
		lits, keys := refReduce(c.lits, c.keys, th)
		if len(lits) != len(c.lits) {
			c = refMk(lits, keys)
		}
		if seen[c.key] {
			continue
		}
		seen[c.key] = true
		out = append(out, c)
	}
	return out
}

func refAnd(d, e refDNF, th formula.Theory) refDNF {
	var out refDNF
	seen := make(map[string]bool)
	for _, c1 := range d {
		for _, c2 := range e {
			lits, keys := refMerge(c1, c2)
			if refUnsat(lits, th) {
				continue
			}
			lits, keys = refReduce(lits, keys, th)
			c := refMk(lits, keys)
			if seen[c.key] {
				continue
			}
			seen[c.key] = true
			out = append(out, c)
		}
	}
	return out
}

func refSortBySize(d refDNF) refDNF {
	out := append(refDNF{}, d...)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].lits) != len(out[j].lits) {
			return len(out[i].lits) < len(out[j].lits)
		}
		return out[i].key < out[j].key
	})
	return out
}

func refSimplify(d refDNF, th formula.Theory) refDNF {
	sorted := refSortBySize(d)
	var out refDNF
	for _, c := range sorted {
		redundant := false
		for _, kept := range out {
			if refImplies(c, kept, th) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, c)
		}
	}
	return out
}

func refDropK(d refDNF, k int, holds func(refConj) bool) refDNF {
	if len(d) <= k {
		return d
	}
	keep := k - 1
	if keep < 0 {
		keep = 0
	}
	out := append(refDNF{}, d[:keep]...)
	for _, c := range d {
		if holds(c) {
			dup := false
			for _, o := range out {
				if o.key == c.key {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, c)
			}
			return out
		}
	}
	return append(out, d[keep:k]...)
}

func refApprox(d refDNF, th formula.Theory, k int, holds func(refConj) bool) refDNF {
	d = refSimplify(d, th)
	if k <= 0 || len(d) <= k {
		return d
	}
	return refDropK(d, k, holds)
}

// ---------------------------------------------------------------------------
// Mirror AST: the same random formula built for both engines, with the
// constructor folds of formula.And/Or/Not replicated so both toDNF passes
// walk an identical structure.

type refF struct {
	kind byte // 't' true, 'f' false, 'l' lit, 'n' not, 'a' and, 'o' or
	lit  formula.Lit
	subs []refF
}

func refNot(f refF) refF {
	switch f.kind {
	case 't':
		return refF{kind: 'f'}
	case 'f':
		return refF{kind: 't'}
	case 'n':
		return f.subs[0]
	case 'l':
		return refF{kind: 'l', lit: f.lit.Negate()}
	}
	return refF{kind: 'n', subs: []refF{f}}
}

func refAndF(fs ...refF) refF {
	var subs []refF
	for _, f := range fs {
		switch f.kind {
		case 't':
			continue
		case 'f':
			return refF{kind: 'f'}
		case 'a':
			subs = append(subs, f.subs...)
		default:
			subs = append(subs, f)
		}
	}
	switch len(subs) {
	case 0:
		return refF{kind: 't'}
	case 1:
		return subs[0]
	}
	return refF{kind: 'a', subs: subs}
}

func refOrF(fs ...refF) refF {
	var subs []refF
	for _, f := range fs {
		switch f.kind {
		case 'f':
			continue
		case 't':
			return refF{kind: 't'}
		case 'o':
			subs = append(subs, f.subs...)
		default:
			subs = append(subs, f)
		}
	}
	switch len(subs) {
	case 0:
		return refF{kind: 'f'}
	case 1:
		return subs[0]
	}
	return refF{kind: 'o', subs: subs}
}

func refToDNF(f refF, neg bool, th formula.Theory) refDNF {
	switch f.kind {
	case 't':
		if neg {
			return nil
		}
		return refDNF{refConj{}}
	case 'f':
		if neg {
			return refDNF{refConj{}}
		}
		return nil
	case 'n':
		return refToDNF(f.subs[0], !neg, th)
	case 'l':
		l := f.lit
		if neg {
			l = l.Negate()
		}
		if l.Neg {
			if alts, ok := th.NegLit(l.Negate()); ok {
				out := make(refDNF, 0, len(alts))
				for _, a := range alts {
					out = append(out, refNewConj(a))
				}
				return out
			}
		}
		return refDNF{refNewConj(l)}
	case 'a', 'o':
		isAnd := f.kind == 'a'
		if neg {
			isAnd = !isAnd
		}
		if isAnd {
			out := refDNF{refConj{}}
			for _, s := range f.subs {
				out = refAnd(out, refToDNF(s, neg, th), th)
				if len(out) == 0 {
					return out
				}
			}
			return out
		}
		var out refDNF
		for _, s := range f.subs {
			out = refOr(out, refToDNF(s, neg, th), th)
		}
		return out
	}
	panic("refToDNF: bad kind")
}

// genBoth builds one random formula simultaneously as a production Formula
// and as the mirror AST, applying identical constructor folds.
func genBoth(rng *rand.Rand, pool []formula.Lit, depth int) (formula.Formula, refF) {
	if depth == 0 || rng.Intn(4) == 0 {
		l := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			l = l.Negate()
		}
		return formula.FromLit(l), refF{kind: 'l', lit: l}
	}
	switch rng.Intn(5) {
	case 0:
		g, r := genBoth(rng, pool, depth-1)
		return formula.Not(g), refNot(r)
	case 1:
		return formula.True(), refF{kind: 't'}
	case 2:
		return formula.False(), refF{kind: 'f'}
	case 3:
		g1, r1 := genBoth(rng, pool, depth-1)
		g2, r2 := genBoth(rng, pool, depth-1)
		return formula.And(g1, g2), refAndF(r1, r2)
	default:
		g1, r1 := genBoth(rng, pool, depth-1)
		g2, r2 := genBoth(rng, pool, depth-1)
		return formula.Or(g1, g2), refOrF(r1, r2)
	}
}

// ---------------------------------------------------------------------------
// The differential harness.

// sameDNF requires byte-identical canonical order (disjunct keys, in order)
// and, as a belt-and-braces check, the same denotation at the supplied
// theory-consistent valuations.
func sameDNF(t *testing.T, op string, got formula.DNF, want refDNF, evs []func(formula.Lit) bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d disjuncts, reference has %d\n got: %s\nwant: %s",
			op, len(got), len(want), got, refString(want))
	}
	for i := range got {
		if got[i].Key() != want[i].key {
			t.Fatalf("%s: disjunct %d key %q, reference %q\n got: %s\nwant: %s",
				op, i, got[i].Key(), want[i].key, got, refString(want))
		}
	}
	for _, ev := range evs {
		if got.Eval(ev) != want.eval(ev) {
			t.Fatalf("%s: denotations differ at a valuation\n got: %s\nwant: %s",
				op, got, refString(want))
		}
	}
}

func refString(d refDNF) string {
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = c.key
	}
	return strings.Join(parts, " | ")
}

// runDifferential drives trials random formulas over one theory and checks
// every kernel operation against the reference.
func runDifferential(t *testing.T, th formula.Theory, pool []formula.Lit,
	evs []func(formula.Lit) bool, seed int64, trials int) {
	rng := rand.New(rand.NewSource(seed))
	u := formula.NewUniverse(th)
	for trial := 0; trial < trials; trial++ {
		f1, r1 := genBoth(rng, pool, 4)
		f2, r2 := genBoth(rng, pool, 3)

		d1 := formula.ToDNF(f1, u)
		w1 := refSortBySize(refToDNF(r1, false, th))
		sameDNF(t, "ToDNF", d1, w1, evs)

		d2 := formula.ToDNF(f2, u)
		w2 := refSortBySize(refToDNF(r2, false, th))
		sameDNF(t, "ToDNF(2)", d2, w2, evs)

		sameDNF(t, "And", d1.And(d2), refAnd(w1, w2, th), evs)
		sameDNF(t, "Or", d1.Or(d2), refOr(w1, w2, th), evs)
		sameDNF(t, "Simplify", d1.Simplify(), refSimplify(w1, th), evs)

		ev := evs[rng.Intn(len(evs))]
		holds := func(c formula.Conj) bool { return c.Eval(ev) }
		holdsRef := func(c refConj) bool { return c.eval(ev) }
		for _, k := range []int{0, 1, 3} {
			sameDNF(t, "Approx",
				formula.Approx(f1, u, k, holds),
				refApprox(refSortBySize(refToDNF(r1, false, th)), th, k, holdsRef),
				evs)
		}
	}
}

// TestDifferentialTypestate: the interned kernel matches the string-keyed
// reference over the type-state theory (signed literals, err/type/var
// entailments and contradictions).
func TestDifferentialTypestate(t *testing.T) {
	prop := typestate.FileProperty()
	a := typestate.New(prop, "h", []string{"x", "y"})
	var pool []formula.Lit
	pool = append(pool, formula.Lit{P: typestate.PErr{}})
	for _, v := range []string{"x", "y"} {
		pool = append(pool,
			formula.Lit{P: typestate.PParam{X: v}},
			formula.Lit{P: typestate.PVar{X: v}})
	}
	for s, name := range prop.States {
		pool = append(pool, formula.Lit{P: typestate.PType{S: s, Name: name}})
	}
	var evs []func(formula.Lit) bool
	for _, p := range a.AllAbstractions() {
		for _, d := range a.AllStates() {
			p, d := p, d
			evs = append(evs, func(l formula.Lit) bool { return a.EvalLit(l, p, d) })
		}
	}
	runDifferential(t, typestate.Theory{}, pool, evs, 101, 300)
}

// TestDifferentialEscape: the interned kernel matches the string-keyed
// reference over the thread-escape theory, whose NegLit expansion rewrites
// every negated literal into positive alternatives.
func TestDifferentialEscape(t *testing.T) {
	a := escape.New([]string{"u", "v"}, []string{"f"}, []string{"h1", "h2"})
	var pool []formula.Lit
	for _, h := range []string{"h1", "h2"} {
		pool = append(pool,
			formula.Lit{P: escape.PSite{H: h, O: escape.L}},
			formula.Lit{P: escape.PSite{H: h, O: escape.E}})
	}
	for _, v := range []string{"u", "v"} {
		for _, o := range escape.Values {
			pool = append(pool, formula.Lit{P: escape.PLocal{V: v, O: o}})
		}
	}
	for _, o := range escape.Values {
		pool = append(pool, formula.Lit{P: escape.PField{F: "f", O: o}})
	}
	var evs []func(formula.Lit) bool
	for _, p := range a.AllAbstractions() {
		for _, d := range a.AllStates() {
			p, d := p, d
			evs = append(evs, func(l formula.Lit) bool { return a.EvalLit(l, p, d) })
		}
	}
	runDifferential(t, escape.Theory{}, pool, evs, 202, 300)
}
