package formula

import (
	"testing"
	"testing/quick"
)

// Filtered-vs-unfiltered equivalence: the signature pre-filter and the
// one-watched-literal grouping in Simplify are screening optimizations only —
// for ANY theory they must leave the output byte-identical to the plain
// pairwise scan the kernel shipped with. simplifyRef below is that scan,
// transcribed from the pre-index implementation with the counters removed.

func simplifyRef(d DNF) DNF {
	sorted := d.SortBySize()
	if len(sorted) <= 1 {
		return sorted
	}
	u := d.universe()
	if u == nil { // every disjunct is the empty conjunction
		return sorted[:1]
	}
	v := u.view.Load()
	var out DNF
	var buf [8]uint64
	for _, c := range sorted {
		mask := maskOf(buf[:], c.ids)
		redundant := false
		for _, kept := range out {
			if impliesMask(u, v, mask, kept.ids) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, c)
		}
	}
	return out
}

// chainTheory makes the capability signatures non-trivial: positive literals
// form an entailment chain (b_i ⇒ b_j for j ≤ i) and opposite polarities of
// one variable contradict. This drives real traffic through the imp/con
// capability rows, the watch groups, and the bitwise disproof — the paths
// that must never change a verdict.
type chainTheory struct{}

func (chainTheory) Implies(a, b Lit) bool {
	if a == b {
		return true
	}
	return !a.Neg && !b.Neg && a.P.(mockPrim).V >= b.P.(mockPrim).V
}

func (chainTheory) Contradicts(a, b Lit) bool {
	return a.P.(mockPrim).V == b.P.(mockPrim).V && a.Neg != b.Neg
}

func (chainTheory) NegLit(Lit) ([]Lit, bool) { return nil, false }

func sameDNF(a, b DNF) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestQuickSigFilterNeverChangesSimplify: Simplify's indexed scan and the
// reference pairwise scan produce identical output on the same DNF, under
// both the trivial theory and the chain theory, on shared and fresh
// universes (fresh universes start with cold capability rows, so the test
// also covers the fill-then-reuse path).
func TestQuickSigFilterNeverChangesSimplify(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *Universe
	}{
		{"trivial", newU},
		{"chain", func() *Universe { return NewUniverse(chainTheory{}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			u := tc.mk()
			f := func(seed int64) bool {
				d := ToDNF(formulaFromSeed(seed, 5, 4), u)
				return sameDNF(d.Simplify(), simplifyRef(d))
			}
			if err := quick.Check(f, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickSigFilterNeverChangesApprox: the full approx pipeline — simplify
// then dropk — agrees with the reference simplify composed with the same
// DropK, pinning that the index never changes which disjuncts survive into
// (and therefore out of) the dropk step.
func TestQuickSigFilterNeverChangesApprox(t *testing.T) {
	u := NewUniverse(chainTheory{})
	f := func(seed int64, k8 uint8) bool {
		k := int(k8%4) + 1
		d := ToDNF(formulaFromSeed(seed, 5, 4), u)
		holds := func(c Conj) bool { return len(c.ids)%2 == 0 }
		got := ApproxDNF(d, k, holds)
		ref := simplifyRef(d)
		if k > 0 && len(ref) > k {
			ref = ref.DropK(k, holds)
		}
		return sameDNF(got, ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
