package warm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/ir"
	"tracer/internal/lang"
	"tracer/internal/obs"
	"tracer/internal/uset"
)

// Client names the analysis client a session stores entries for.
type Client string

const (
	Typestate Client = "typestate"
	Escape    Client = "escape"
	Nullness  Client = "nullness"
)

// Config identifies the solving configuration of a session. K participates
// in the snapshot's config signature (clauses learned at one k are not
// reused at another); MaxIters and Timeout only gate Exhausted replay.
type Config struct {
	Client   Client
	K        int
	MaxIters int // effective iteration cap of the solve
	Timeout  time.Duration
}

// Session is the warm-start view of one program under one configuration:
// entries surviving the IR delta against the nearest stored snapshot, plus
// everything recorded during the current solve. Record methods are safe for
// concurrent use (core.Options.OnLearn fires from parallel workers).
type Session struct {
	st      *Store
	prog    *driver.Program
	conf    Config
	confSig string
	fp      ir.ProgramFP

	// exact reports a byte-exact Whole fingerprint match with the loaded
	// snapshot; only then are Exhausted verdicts replayable.
	exact bool

	names   []string // parameter universe, index = parameter id
	nameIdx map[string]int

	mu      sync.Mutex
	entries map[string]*queryEntry
	seen    map[string]map[string]bool // per-query cube dedup keys
}

// confSignature builds the snapshot-level config identity (soundness
// condition 4). Client-specific whole-program knobs (the type-state stress
// property's method list) come from the registry's WarmConfExtra, keeping
// the signature byte-identical with snapshots written before the registry.
func confSignature(p *driver.Program, conf Config) string {
	extra := ""
	if spec := driver.ClientByName(string(conf.Client)); spec != nil {
		extra = spec.WarmConfExtra(p)
	}
	return fmt.Sprintf("%s|k=%d%s", conf.Client, conf.K, extra)
}

// Session loads the warm-start state for prog under conf. It never fails:
// with no usable snapshot (or a disabled store) every query is simply cold.
func (st *Store) Session(p *driver.Program, conf Config) *Session {
	s := &Session{
		st:      st,
		prog:    p,
		conf:    conf,
		confSig: confSignature(p, conf),
		fp:      ir.Fingerprint(p.IR),
		entries: map[string]*queryEntry{},
		seen:    map[string]map[string]bool{},
	}
	if spec := driver.ClientByName(string(conf.Client)); spec != nil {
		s.names = spec.ParamNames(p)
	}
	s.nameIdx = make(map[string]int, len(s.names))
	for i, n := range s.names {
		s.nameIdx[n] = i
	}
	// Pre-build the program's lazily-constructed site-owner table here, on
	// one goroutine: RecordLearn may fire concurrently from batch workers.
	p.SiteOwner("")
	s.load()
	return s
}

// Exact reports whether the session matched a snapshot of the identical
// program (replay-eligible).
func (s *Session) Exact() bool { return s.exact }

// load picks the nearest compatible snapshot and installs its surviving
// entries.
func (s *Session) load() {
	if !s.st.Enabled() {
		return
	}
	var best *snapshotFile
	var bestTouched map[string]bool
	snaps := s.readCandidates()
	s.st.count(obs.WarmSnapshots, int64(len(snaps)))
	for _, sf := range snaps {
		if sf.Whole == hex64(s.fp.Whole) {
			best, bestTouched, s.exact = sf, nil, true
			break
		}
		touched := s.touchedMethods(sf)
		if best == nil || len(touched) < len(bestTouched) {
			best, bestTouched = sf, touched
		}
	}
	if best == nil {
		return
	}
	var loaded, invalidated int64
	for key, e := range best.Queries {
		kept := s.surviveEntry(e, bestTouched)
		loaded += int64(len(kept.Clauses))
		invalidated += int64(len(e.Clauses) - len(kept.Clauses))
		if kept.Status == "" && len(kept.Clauses) == 0 {
			continue
		}
		s.entries[key] = kept
		dedup := make(map[string]bool, len(kept.Clauses))
		for _, c := range kept.Clauses {
			dedup[c.cubeKey()] = true
		}
		s.seen[key] = dedup
	}
	s.st.count(obs.WarmClausesLoaded, loaded)
	s.st.count(obs.WarmClausesInvalidated, invalidated)
}

// readCandidates returns the stored snapshots this session may reuse: same
// client, same config signature, same declaration shape (soundness
// conditions 1 and 4).
func (s *Session) readCandidates() []*snapshotFile {
	var out []*snapshotFile
	for _, sf := range s.st.readSnapshots() {
		if sf.Client == string(s.conf.Client) && sf.Conf == s.confSig &&
			sf.Shape == hex64(s.fp.Shape) {
			out = append(out, sf)
		}
	}
	return out
}

// touchedMethods lists the methods whose stored body fingerprint differs
// from the current program's.
func (s *Session) touchedMethods(sf *snapshotFile) map[string]bool {
	touched := map[string]bool{}
	for name, fp := range s.fp.Methods {
		if sf.Methods[name] != hex64(fp) {
			touched[name] = true
		}
	}
	for name := range sf.Methods {
		if _, ok := s.fp.Methods[name]; !ok {
			touched[name] = true
		}
	}
	return touched
}

// surviveEntry filters one stored entry through the delta rules. touched ==
// nil means an exact snapshot match: every clause survives (modulo name
// validation) and the verdict is kept. Otherwise the verdict is cleared —
// stale verdicts must never become replayable by being re-saved against the
// new fingerprint — and each clause survives only if its support is
// untouched, its environment hash still matches, and its names exist.
func (s *Session) surviveEntry(e *queryEntry, touched map[string]bool) *queryEntry {
	kept := &queryEntry{
		Status:     e.Status,
		Iterations: e.Iterations,
		MaxIters:   e.MaxIters,
		TimeoutMS:  e.TimeoutMS,
		Abs:        e.Abs,
	}
	if !s.validStatus(e.Status) || touched != nil {
		kept.Status, kept.Iterations, kept.Abs = "", 0, nil
	}
	for _, c := range e.Clauses {
		if !s.namesValid(c.Pos) || !s.namesValid(c.Neg) {
			continue
		}
		if touched != nil {
			if len(c.Support) == 0 {
				continue // unguarded clause: only trustable byte-exact
			}
			ok := true
			for _, m := range c.Support {
				if touched[m] {
					ok = false
					break
				}
			}
			if !ok || c.Env != hex64(s.prog.EnvHash(c.Support)) {
				continue
			}
		}
		kept.Clauses = append(kept.Clauses, c)
	}
	return kept
}

func (s *Session) validStatus(status string) bool {
	switch status {
	case core.Proved.String(), core.Impossible.String(), core.Exhausted.String():
		return true
	}
	return false
}

func (s *Session) namesValid(names []string) bool {
	for _, n := range names {
		if _, ok := s.nameIdx[n]; !ok {
			return false
		}
	}
	return true
}

// SeedFor returns the surviving blocking cubes of a query, to be passed as
// core.Options.Seed (or returned from SeedBatch). Each consulted query
// counts as a warm hit (an entry with seeds or a replayable verdict exists)
// or miss.
func (s *Session) SeedFor(queryKey string) []core.ParamCube {
	s.mu.Lock()
	e := s.entries[queryKey]
	s.mu.Unlock()
	if e == nil || (len(e.Clauses) == 0 && !s.replayable(e)) {
		s.st.count(obs.WarmQueryMiss, 1)
		return nil
	}
	s.st.count(obs.WarmQueryHit, 1)
	out := make([]core.ParamCube, 0, len(e.Clauses))
	for _, c := range e.Clauses {
		cube, ok := s.cubeOf(c)
		if !ok {
			continue
		}
		out = append(out, cube)
	}
	return out
}

func (s *Session) cubeOf(c storedClause) (core.ParamCube, bool) {
	pos := make([]int, 0, len(c.Pos))
	for _, n := range c.Pos {
		id, ok := s.nameIdx[n]
		if !ok {
			return core.ParamCube{}, false
		}
		pos = append(pos, id)
	}
	neg := make([]int, 0, len(c.Neg))
	for _, n := range c.Neg {
		id, ok := s.nameIdx[n]
		if !ok {
			return core.ParamCube{}, false
		}
		neg = append(neg, id)
	}
	return core.ParamCube{Pos: uset.New(pos...), Neg: uset.New(neg...)}, true
}

func (s *Session) replayable(e *queryEntry) bool {
	return s.exact && e.Status == core.Exhausted.String() &&
		e.MaxIters == s.conf.MaxIters &&
		e.TimeoutMS == s.conf.Timeout.Milliseconds()
}

// Replay returns a stored verdict that may stand in for a fresh solve.
// Policy: only Exhausted verdicts, only on a byte-exact program match under
// the identical iteration cap and timeout. Proved and Impossible verdicts
// are never replayed — the solver re-establishes them from the seeded
// clauses in at most one forward run, which keeps the brute-force oracle
// applicable to every warm answer.
func (s *Session) Replay(queryKey string) (core.Result, bool) {
	s.mu.Lock()
	e := s.entries[queryKey]
	s.mu.Unlock()
	if e == nil || !s.replayable(e) {
		return core.Result{}, false
	}
	s.st.count(obs.WarmReplayExhausted, 1)
	return core.Result{
		Status:     core.Exhausted,
		Iterations: e.Iterations,
	}, true
}

// RecordLearn persists the accepted cubes of one backward pass for a query
// (wire it to core.Options.OnLearn). The justifying trace determines the
// clause guards: its supporting methods and their current environment hash.
func (s *Session) RecordLearn(queryKey string, t lang.Trace, cubes []core.ParamCube) {
	if !s.st.Enabled() || len(cubes) == 0 {
		return
	}
	support := supportMethods(s.prog, t)
	env := hex64(s.prog.EnvHash(support))
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[queryKey]
	if e == nil {
		e = &queryEntry{}
		s.entries[queryKey] = e
	}
	dedup := s.seen[queryKey]
	if dedup == nil {
		dedup = map[string]bool{}
		s.seen[queryKey] = dedup
	}
	for _, cube := range cubes {
		c := storedClause{
			Pos:     s.namesOf(cube.Pos),
			Neg:     s.namesOf(cube.Neg),
			Support: support,
			Env:     env,
		}
		k := c.cubeKey()
		if dedup[k] {
			continue
		}
		dedup[k] = true
		e.Clauses = append(e.Clauses, c)
	}
}

// RecordResult persists a query's final verdict. Failed results are not
// stored (they describe this process's misbehavior, not the program), and
// Exhausted results remember the budget they were measured under.
func (s *Session) RecordResult(queryKey string, r core.Result) {
	if !s.st.Enabled() || r.Status == core.Failed {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[queryKey]
	if e == nil {
		e = &queryEntry{}
		s.entries[queryKey] = e
	}
	e.Status = r.Status.String()
	e.Iterations = r.Iterations
	e.MaxIters = s.conf.MaxIters
	e.TimeoutMS = s.conf.Timeout.Milliseconds()
	e.Abs = s.namesOf(r.Abstraction)
}

func (s *Session) namesOf(set uset.Set) []string {
	if set.Empty() {
		return nil
	}
	out := make([]string, 0, set.Len())
	for _, id := range set.Elems() {
		if id >= 0 && id < len(s.names) {
			out = append(out, s.names[id])
		}
	}
	sort.Strings(out)
	return out
}

// Save writes the session's entries as the snapshot for the current program
// fingerprint. Surviving-but-unsolved entries are saved too (their clauses
// stay reusable; their verdicts were already cleared unless byte-exact).
func (s *Session) Save() error {
	if !s.st.Enabled() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return nil
	}
	methods := make(map[string]string, len(s.fp.Methods))
	for name, fp := range s.fp.Methods {
		methods[name] = hex64(fp)
	}
	sf := &snapshotFile{
		Version: Version,
		Whole:   hex64(s.fp.Whole),
		Shape:   hex64(s.fp.Shape),
		Methods: methods,
		Client:  string(s.conf.Client),
		Conf:    s.confSig,
		Queries: s.entries,
	}
	return s.st.writeSnapshot(sf)
}

// supportMethods extracts the QualNames of the methods supporting a trace:
// the owners of every qualified variable its atoms mention, plus the owners
// of every allocation site (soundness condition 2's support set).
func supportMethods(p *driver.Program, t lang.Trace) []string {
	set := map[string]bool{}
	addVar := func(qv string) {
		if i := strings.Index(qv, "::"); i > 0 {
			set[qv[:i]] = true
		}
	}
	addSite := func(h string) {
		if owner := p.SiteOwner(h); owner != "" {
			set[owner] = true
		}
	}
	for _, at := range t {
		switch at := at.(type) {
		case lang.Alloc:
			addVar(at.V)
			addSite(at.H)
		case lang.Move:
			addVar(at.Dst)
			addVar(at.Src)
		case lang.MoveNull:
			addVar(at.V)
		case lang.GlobalWrite:
			addVar(at.V)
		case lang.GlobalRead:
			addVar(at.V)
		case lang.Load:
			addVar(at.Dst)
			addVar(at.Src)
		case lang.Store:
			addVar(at.Dst)
			addVar(at.Src)
		case lang.Invoke:
			addVar(at.V)
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
