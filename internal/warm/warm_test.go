package warm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

const progBase = `
global g

class Main {
  field f
  method main(this) {
    var a, b, t
    a = new Main @ h1
    b = new Helper @ h2
    t = b.work(a)
    a.ping()
    t.ping()
    a.f = t
  }
  method ping(this) {
    return
  }
}

class Helper {
  method work(this, x) {
    var u
    u = new Main @ h3
    if * {
      u = x
    }
    u.ping()
    return u
  }
}
`

// progEditNeutral edits Helper.work without changing any points-to set: a
// duplicated call to an existing method.
const progEditNeutral = `
global g

class Main {
  field f
  method main(this) {
    var a, b, t
    a = new Main @ h1
    b = new Helper @ h2
    t = b.work(a)
    a.ping()
    t.ping()
    a.f = t
  }
  method ping(this) {
    return
  }
}

class Helper {
  method work(this, x) {
    var u
    u = new Main @ h3
    if * {
      u = x
    }
    u.ping()
    u.ping()
    return u
  }
}
`

// progShape adds a field: a declaration-shape change (cold restart).
const progShape = `
global g

class Main {
  field f, f2
  method main(this) {
    var a, b, t
    a = new Main @ h1
    b = new Helper @ h2
    t = b.work(a)
    a.ping()
    t.ping()
    a.f = t
  }
  method ping(this) {
    return
  }
}

class Helper {
  method work(this, x) {
    var u
    u = new Main @ h3
    if * {
      u = x
    }
    u.ping()
    return u
  }
}
`

func load(t *testing.T, src string) *driver.Program {
	t.Helper()
	p, err := driver.Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

// solveTS resolves every generated type-state query through the session,
// mirroring the bench harness wiring: replay, then seeded solve, then
// record. Returns results keyed by the stable query key.
func solveTS(t *testing.T, p *driver.Program, sess *Session, conf Config) map[string]core.Result {
	t.Helper()
	out := map[string]core.Result{}
	for _, q := range p.TypestateQueries() {
		q := q
		if r, ok := sess.Replay(q.Key); ok {
			out[q.Key] = r
			continue
		}
		r, err := core.Solve(p.TypestateJob(q, conf.K), core.Options{
			MaxIters: conf.MaxIters,
			Seed:     sess.SeedFor(q.Key),
			OnLearn: func(_ int, _ uset.Set, tr lang.Trace, cubes []core.ParamCube) {
				sess.RecordLearn(q.Key, tr, cubes)
			},
		})
		if err != nil {
			t.Fatalf("query %s: %v", q.ID, err)
		}
		sess.RecordResult(q.Key, r)
		out[q.Key] = r
	}
	return out
}

func solveEsc(t *testing.T, p *driver.Program, sess *Session, conf Config) map[string]core.Result {
	t.Helper()
	out := map[string]core.Result{}
	for _, q := range p.EscapeQueries() {
		q := q
		if r, ok := sess.Replay(q.Key); ok {
			out[q.Key] = r
			continue
		}
		r, err := core.Solve(p.EscapeJob(q, conf.K), core.Options{
			MaxIters: conf.MaxIters,
			Seed:     sess.SeedFor(q.Key),
			OnLearn: func(_ int, _ uset.Set, tr lang.Trace, cubes []core.ParamCube) {
				sess.RecordLearn(q.Key, tr, cubes)
			},
		})
		if err != nil {
			t.Fatalf("query %s: %v", q.ID, err)
		}
		sess.RecordResult(q.Key, r)
		out[q.Key] = r
	}
	return out
}

func wantSame(t *testing.T, cold, warm map[string]core.Result, context string) {
	t.Helper()
	if len(cold) != len(warm) {
		t.Fatalf("%s: query counts differ: %d vs %d", context, len(cold), len(warm))
	}
	for k, c := range cold {
		w, ok := warm[k]
		if !ok {
			t.Fatalf("%s: missing %s", context, k)
		}
		if w.Status != c.Status || !w.Abstraction.Equal(c.Abstraction) {
			t.Fatalf("%s: %s diverged: warm %v/%v cold %v/%v",
				context, k, w.Status, w.Abstraction, c.Status, c.Abstraction)
		}
	}
}

func tsConf(maxIters int) Config {
	return Config{Client: Typestate, K: 2, MaxIters: maxIters}
}

func TestWarmRoundTrip(t *testing.T) {
	dir := t.TempDir()
	conf := tsConf(50)

	p1 := load(t, progBase)
	st1 := Open(dir, nil)
	s1 := st1.Session(p1, conf)
	if s1.Exact() {
		t.Fatal("fresh store claims exact match")
	}
	cold := solveTS(t, p1, s1, conf)
	if err := s1.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}

	// A separate Open models a process restart.
	p2 := load(t, progBase)
	s2 := Open(dir, nil).Session(p2, conf)
	if !s2.Exact() {
		t.Fatal("identical program did not match exactly")
	}
	warm := solveTS(t, p2, s2, conf)
	wantSame(t, cold, warm, "round-trip")
	for k, w := range warm {
		if w.Iterations > 2 {
			t.Errorf("warm query %s took %d iterations", k, w.Iterations)
		}
	}
}

func TestWarmRoundTripEscape(t *testing.T) {
	dir := t.TempDir()
	conf := Config{Client: Escape, K: 2, MaxIters: 50}
	p1 := load(t, progBase)
	s1 := Open(dir, nil).Session(p1, conf)
	cold := solveEsc(t, p1, s1, conf)
	if err := s1.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	p2 := load(t, progBase)
	s2 := Open(dir, nil).Session(p2, conf)
	warm := solveEsc(t, p2, s2, conf)
	wantSame(t, cold, warm, "escape round-trip")
	for k, w := range warm {
		if w.Iterations > 2 {
			t.Errorf("warm query %s took %d iterations", k, w.Iterations)
		}
	}
}

func TestWarmDeltaInvalidation(t *testing.T) {
	dir := t.TempDir()
	conf := tsConf(50)
	p1 := load(t, progBase)
	s1 := Open(dir, nil).Session(p1, conf)
	solveTS(t, p1, s1, conf)
	if err := s1.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}

	// Re-solve the edited program warm: the session must not be exact, but
	// surviving clauses must keep results identical to a cold solve of the
	// edited program.
	pEdit := load(t, progEditNeutral)
	sWarm := Open(dir, nil).Session(pEdit, conf)
	if sWarm.Exact() {
		t.Fatal("edited program matched exactly")
	}
	warm := solveTS(t, pEdit, sWarm, conf)

	pEditCold := load(t, progEditNeutral)
	sCold := Open(t.TempDir(), nil).Session(pEditCold, conf)
	cold := solveTS(t, pEditCold, sCold, conf)
	wantSame(t, cold, warm, "delta edit")

	// The pts-neutral edit kills only clauses supported by Helper.work;
	// at least one clause of another method must have survived and seeded.
	survived := 0
	for _, e := range sWarm.entries {
		survived += len(e.Clauses)
	}
	if survived == 0 {
		t.Log("no clauses survived the edit (all traces pass through Helper.work)")
	}
}

func TestWarmShapeChangeGoesCold(t *testing.T) {
	dir := t.TempDir()
	conf := tsConf(50)
	p1 := load(t, progBase)
	s1 := Open(dir, nil).Session(p1, conf)
	solveTS(t, p1, s1, conf)
	if err := s1.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	p2 := load(t, progShape)
	s2 := Open(dir, nil).Session(p2, conf)
	if s2.Exact() || len(s2.entries) != 0 {
		t.Fatalf("shape change reused state: exact=%v entries=%d", s2.Exact(), len(s2.entries))
	}
}

func TestWarmConfigMismatchGoesCold(t *testing.T) {
	dir := t.TempDir()
	p1 := load(t, progBase)
	conf := Config{Client: Typestate, K: 2, MaxIters: 50}
	s1 := Open(dir, nil).Session(p1, conf)
	solveTS(t, p1, s1, conf)
	if err := s1.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	other := Config{Client: Typestate, K: 3, MaxIters: 50}
	s2 := Open(dir, nil).Session(load(t, progBase), other)
	if s2.Exact() || len(s2.entries) != 0 {
		t.Fatal("k mismatch reused state")
	}
}

func TestWarmExhaustedReplay(t *testing.T) {
	dir := t.TempDir()
	// MaxIters 1 exhausts every query needing refinement.
	conf := tsConf(1)
	p1 := load(t, progBase)
	s1 := Open(dir, nil).Session(p1, conf)
	cold := solveTS(t, p1, s1, conf)
	if err := s1.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	exhausted := 0
	for _, r := range cold {
		if r.Status == core.Exhausted {
			exhausted++
		}
	}
	if exhausted == 0 {
		t.Fatal("test premise broken: nothing exhausted at MaxIters=1")
	}

	s2 := Open(dir, nil).Session(load(t, progBase), conf)
	replayed := 0
	for _, q := range load(t, progBase).TypestateQueries() {
		if r, ok := s2.Replay(q.Key); ok {
			replayed++
			if r.Status != core.Exhausted {
				t.Fatalf("replayed non-exhausted status %v", r.Status)
			}
		}
	}
	if replayed != exhausted {
		t.Fatalf("replayed %d of %d exhausted queries", replayed, exhausted)
	}

	// A different iteration budget must not replay.
	s3 := Open(dir, nil).Session(load(t, progBase), tsConf(2))
	if _, ok := s3.Replay(load(t, progBase).TypestateQueries()[0].Key); ok {
		t.Fatal("replayed across a budget change")
	}
}

func TestWarmCorruptionFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	conf := tsConf(50)
	p1 := load(t, progBase)
	s1 := Open(dir, nil).Session(p1, conf)
	cold := solveTS(t, p1, s1, conf)
	if err := s1.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(files))
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(name, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Truncation: mid-file cut breaks the JSON.
	orig, _ := os.ReadFile(files[0])
	corrupt(files[0], func(b []byte) []byte { return b[:len(b)/2] })
	s2 := Open(dir, nil).Session(load(t, progBase), conf)
	if s2.Exact() || len(s2.entries) != 0 {
		t.Fatal("truncated snapshot was trusted")
	}
	warm := solveTS(t, load(t, progBase), s2, conf)
	wantSame(t, cold, warm, "truncated store")

	// Bit flip inside the JSON body.
	corrupt(files[0], func([]byte) []byte {
		b := append([]byte(nil), orig...)
		b[len(b)/3] ^= 0x40
		return b
	})
	s3 := Open(dir, nil).Session(load(t, progBase), conf)
	warm3 := solveTS(t, load(t, progBase), s3, conf)
	wantSame(t, cold, warm3, "bit-flipped store")

	// Version mismatch: valid JSON, wrong schema version.
	corrupt(files[0], func([]byte) []byte {
		return []byte(strings.Replace(string(orig), `"version": 1`, `"version": 99`, 1))
	})
	s4 := Open(dir, nil).Session(load(t, progBase), conf)
	if s4.Exact() || len(s4.entries) != 0 {
		t.Fatal("version-mismatched snapshot was trusted")
	}
}

func TestWarmDisabledStore(t *testing.T) {
	conf := tsConf(50)
	p := load(t, progBase)
	s := Open("", nil).Session(p, conf)
	cold := solveTS(t, p, s, conf)
	if err := s.Save(); err != nil {
		t.Fatalf("disabled save: %v", err)
	}
	if len(cold) == 0 {
		t.Fatal("no queries solved")
	}
}
