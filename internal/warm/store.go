// Package warm implements a persistent, content-addressed warm-start store
// for the TRACER solver. A store directory holds one snapshot file per
// (program fingerprint, client, configuration): the learned blocking clauses
// and final verdict of every query solved against that program. A later
// process re-solving the same — or a slightly edited — program opens a
// Session, which finds the nearest snapshot by IR fingerprint, invalidates
// exactly the clauses the edit could have broken, and seeds the survivors
// into the solver before iteration 1.
//
// # Soundness
//
// A stored clause blocks a cube of abstractions that a previous backward
// meta-analysis proved failing, justified by one counterexample trace t.
// Seeding it into a solve over program P' is sound iff the cube still
// contains only failing abstractions there, which holds when t remains a
// feasible trace of P' with the same weakest-precondition chain:
//
//  1. the declaration shape (globals, hierarchy, fields, signatures,
//     native-ness) is unchanged — otherwise lowering may resolve calls
//     differently everywhere (snapshot-level check);
//  2. every method supporting t (the methods owning t's atoms and the
//     allocation sites t mentions) has an identical body fingerprint
//     (per-clause check against the IR diff);
//  3. the points-to environment of the supporting methods is unchanged
//     (per-clause hash) — t's call branches were chosen by those sets, and
//     the type-state MayPoint oracle reads them;
//  4. the client configuration (k, and for type-state the stress property's
//     method list) is unchanged (snapshot-level check);
//  5. every parameter name in the cube still exists in the new parameter
//     universe (clauses are stored by name and remapped to indices at
//     load; a vanished name kills the clause).
//
// By induction along t each atom's edge still exists in the lowered P', so
// the trace replays and the meta-analysis would re-derive the same cubes.
//
// Verdicts are never trusted across an edit. On a byte-exact fingerprint
// match, Proved/Impossible verdicts are still re-established by the solver
// (the seeded clause set makes that 1 and 0 forward runs respectively);
// only Exhausted verdicts are replayed without solving, and only when the
// stored iteration cap and timeout equal the current ones — re-burning a
// full timeout per already-known-hopeless query would erase the warm win.
//
// Everything read from disk is untrusted: unparseable files, version
// mismatches, unknown statuses, and unknown parameter names degrade to a
// cold solve (counted on warm.entries_corrupt / warm.clauses_invalidated),
// never to an error.
package warm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tracer/internal/obs"
)

// Version is the snapshot schema version; files with any other version are
// ignored (cold fallback), never migrated.
const Version = 1

// Store is a handle on a warm-start directory. The zero value (and any Open
// failure) is a disabled store whose Sessions are all-cold no-ops.
type Store struct {
	dir string
	rec obs.Recorder
}

// Open returns a store rooted at dir, creating it if needed. Open never
// fails hard: on error the returned store is disabled and every session
// behaves cold. rec (nil ok) receives the warm.* counters.
func Open(dir string, rec obs.Recorder) *Store {
	st := &Store{rec: rec}
	if dir == "" {
		return st
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return st
	}
	st.dir = dir
	return st
}

// Enabled reports whether the store has a usable directory.
func (st *Store) Enabled() bool { return st != nil && st.dir != "" }

func (st *Store) count(name string, n int64) {
	if st != nil && st.rec != nil && n != 0 {
		st.rec.Count(name, n)
	}
}

// snapshotFile is the on-disk schema: one solved program × client × config.
type snapshotFile struct {
	Version int    `json:"version"`
	Whole   string `json:"whole"` // hex ir.ProgramFP.Whole
	Shape   string `json:"shape"` // hex ir.ProgramFP.Shape
	// Methods maps QualName → hex body fingerprint, for delta matching.
	Methods map[string]string `json:"methods"`
	Client  string            `json:"client"`
	Conf    string            `json:"conf"` // client config signature
	// Queries maps the position-independent query key → entry.
	Queries map[string]*queryEntry `json:"queries"`
}

// queryEntry is one query's persisted outcome.
type queryEntry struct {
	// Status is "proved", "impossible", or "exhausted" (failed queries are
	// never persisted).
	Status     string `json:"status"`
	Iterations int    `json:"iters"`
	// MaxIters/TimeoutMS record the budget the entry was solved under;
	// Exhausted entries are only replayed under the identical budget.
	MaxIters  int   `json:"maxIters"`
	TimeoutMS int64 `json:"timeoutMS"`
	// Abs is the proving abstraction by parameter name (diagnostic only —
	// warm solves re-derive it from the seeded clauses).
	Abs     []string       `json:"abs,omitempty"`
	Clauses []storedClause `json:"clauses,omitempty"`
}

// storedClause is one blocking cube by parameter name, with its validity
// guard: the methods supporting the justifying trace and the hex points-to
// environment hash of those methods at learn time.
type storedClause struct {
	Pos     []string `json:"pos,omitempty"`
	Neg     []string `json:"neg,omitempty"`
	Support []string `json:"support"`
	Env     string   `json:"env"`
}

// cubeKey canonically renders a stored clause for deduplication.
func (c storedClause) cubeKey() string {
	return strings.Join(c.Pos, ",") + "|" + strings.Join(c.Neg, ",")
}

func hex64(v uint64) string { return fmt.Sprintf("%016x", v) }

// snapshotPath names the file for one (program, client, conf) snapshot.
func (st *Store) snapshotPath(whole uint64, client, conf string) string {
	h := fnvString(conf)
	return filepath.Join(st.dir, fmt.Sprintf("%s-%s-%08x.json", hex64(whole), client, h))
}

func fnvString(s string) uint32 {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// readSnapshots parses every snapshot file of the directory, silently
// skipping (and counting) anything unreadable or mismatched in version.
func (st *Store) readSnapshots() []*snapshotFile {
	if !st.Enabled() {
		return nil
	}
	names, err := filepath.Glob(filepath.Join(st.dir, "*.json"))
	if err != nil {
		return nil
	}
	sort.Strings(names)
	var out []*snapshotFile
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			st.count(obs.WarmEntriesCorrupt, 1)
			continue
		}
		var sf snapshotFile
		if err := json.Unmarshal(data, &sf); err != nil || sf.Version != Version {
			st.count(obs.WarmEntriesCorrupt, 1)
			continue
		}
		out = append(out, &sf)
	}
	return out
}

// writeSnapshot atomically persists sf and prunes stale snapshots of the
// same client+conf beyond a small budget (oldest fingerprints first by
// modification time), so edit chains do not grow the directory unboundedly.
func (st *Store) writeSnapshot(sf *snapshotFile) error {
	if !st.Enabled() {
		return nil
	}
	data, err := json.MarshalIndent(sf, "", " ")
	if err != nil {
		return err
	}
	path := st.snapshotPath(mustHex(sf.Whole), sf.Client, sf.Conf)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	st.prune(sf.Client, sf.Conf, path)
	return nil
}

// maxSnapshots bounds how many snapshots one client+conf keeps on disk.
const maxSnapshots = 16

func (st *Store) prune(client, conf string, keep string) {
	pattern := filepath.Join(st.dir, fmt.Sprintf("*-%s-%08x.json", client, fnvString(conf)))
	names, err := filepath.Glob(pattern)
	if err != nil || len(names) <= maxSnapshots {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	var files []aged
	for _, name := range names {
		if name == keep {
			continue
		}
		fi, err := os.Stat(name)
		if err != nil {
			continue
		}
		files = append(files, aged{name, fi.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].name < files[j].name
	})
	for i := 0; i+maxSnapshots <= len(files); i++ {
		os.Remove(files[i].name)
	}
}

func mustHex(s string) uint64 {
	var v uint64
	fmt.Sscanf(s, "%x", &v)
	return v
}
