package oracle

import (
	"fmt"
	"math/rand"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/escape"
	"tracer/internal/lang"
	"tracer/internal/nullness"
	"tracer/internal/oracle/gen"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// The generated problems draw from FIXED vocabularies, independent of the
// program text: parameter indices stay stable when the shrinker deletes
// atoms, and query subjects (the tracked site, the queried local) are
// always interned. Padding variants append fresh never-referenced names.
var (
	tsVars      = []string{"w", "x", "y", "z"}
	tsSites     = []string{"h", "g"} // h is the tracked site
	tsTracked   = "h"
	escLocals   = []string{"u", "v", "w"}
	escFields   = []string{"f", "g"}
	escSites    = []string{"h1", "h2", "h3"}
	sharedOther = struct {
		Fields  []string
		Globals []string
	}{Fields: []string{"f"}, Globals: []string{"G"}}
)

// tsProps lists the generated type-state properties by name; the name is
// stored in the case (rather than the *Property) so cases print and replay.
var tsProps = []string{"file", "socket", "iterator"}

func tsProp(name string) *typestate.Property {
	switch name {
	case "file":
		return typestate.FileProperty()
	case "socket":
		return typestate.SocketProperty()
	case "iterator":
		return typestate.IteratorProperty()
	}
	panic("oracle: unknown typestate property " + name)
}

// kChoices are the beam widths a case draws from (k of §4.1; 0 disables
// under-approximation).
var kChoices = []int{0, 1, 2, 5}

// TSCase is one generated type-state problem: a program over the fixed
// vocabulary, the query's wanted state set, and the beam width. Pad appends
// that many never-referenced variables to the parameter universe (the
// monotone-padding metamorphic variant).
type TSCase struct {
	Prop string
	Prog lang.Prog
	Want uset.Bits
	K    int
	Pad  int
}

func (c TSCase) String() string {
	return fmt.Sprintf("typestate prop=%s want=%v k=%d pad=%d prog: %s",
		c.Prop, c.Want.Elems(), c.K, c.Pad, c.Prog)
}

// vars returns the case's parameter universe.
func (c TSCase) vars() []string {
	vs := tsVars
	for i := 0; i < c.Pad; i++ {
		vs = append(vs[:len(vs):len(vs)], fmt.Sprintf("pad%d", i))
	}
	return vs
}

// Job builds a fresh core.Problem for the case. Every call returns an
// independent instance (interning mutates an Analysis, so instances must
// not be shared between a truth enumeration and a solve).
func (c TSCase) Job() *typestate.Job {
	g := lang.BuildCFG(c.Prog)
	a := typestate.New(tsProp(c.Prop), tsTracked, c.vars())
	return &typestate.Job{
		A: a, G: g,
		Q: typestate.Query{Nodes: []int{g.Exit}, Want: c.Want},
		K: c.K,
	}
}

// TSPool returns the atom pool the type-state cases draw from.
func TSPool() []lang.Atom {
	return gen.Pool(gen.Universe{
		Vars:    tsVars,
		Sites:   tsSites,
		Fields:  sharedOther.Fields,
		Globals: sharedOther.Globals,
		Methods: tsMethods(),
	})
}

// tsMethods is the union of all generated properties' methods, sorted; a
// program may invoke methods its property ignores (they are identity).
func tsMethods() []string {
	return []string{"bind", "close", "connect", "hasNext", "next", "open", "send"}
}

// RandomTSCase draws a case from the rng. The same rng sequence always
// yields the same case.
func RandomTSCase(rng *rand.Rand) TSCase {
	prop := tsProps[rng.Intn(len(tsProps))]
	ns := len(tsProp(prop).States)
	want := uset.Bits(1 + rng.Intn(1<<ns-1)) // any nonempty subset
	return TSCase{
		Prop: prop,
		Prog: gen.Program(rng, TSPool(), gen.DefaultConfig(3+rng.Intn(8))),
		Want: want,
		K:    kChoices[rng.Intn(len(kChoices))],
	}
}

// EscCase is one generated thread-escape problem: a program over the fixed
// vocabulary and the queried local. Pad appends never-referenced allocation
// sites to the parameter universe.
type EscCase struct {
	Prog lang.Prog
	V    string
	K    int
	Pad  int
}

func (c EscCase) String() string {
	return fmt.Sprintf("escape v=%s k=%d pad=%d prog: %s", c.V, c.K, c.Pad, c.Prog)
}

func (c EscCase) sites() []string {
	hs := escSites
	for i := 0; i < c.Pad; i++ {
		hs = append(hs[:len(hs):len(hs)], fmt.Sprintf("hpad%d", i))
	}
	return hs
}

// Job builds a fresh core.Problem for the case (see TSCase.Job).
func (c EscCase) Job() *escape.Job {
	g := lang.BuildCFG(c.Prog)
	a := escape.New(escLocals, escFields, c.sites())
	return &escape.Job{
		A: a, G: g,
		Q: escape.Query{Nodes: []int{g.Exit}, V: c.V},
		K: c.K,
	}
}

// EscPool returns the atom pool the thread-escape cases draw from.
func EscPool() []lang.Atom {
	return gen.Pool(gen.Universe{
		Vars:    escLocals,
		Sites:   escSites,
		Fields:  escFields,
		Globals: sharedOther.Globals,
		Methods: []string{"m"},
	})
}

// RandomEscCase draws a case from the rng.
func RandomEscCase(rng *rand.Rand) EscCase {
	return EscCase{
		Prog: gen.Program(rng, EscPool(), gen.DefaultConfig(3+rng.Intn(8))),
		V:    escLocals[rng.Intn(len(escLocals))],
		K:    kChoices[rng.Intn(len(kChoices))],
	}
}

// NullCase is one generated null-dereference problem: a program over the
// escape client's fixed vocabulary (locals and fields are exactly the
// nullness cell universe) and the queried local. Pad appends
// never-referenced locals to the cell universe.
type NullCase struct {
	Prog lang.Prog
	V    string
	K    int
	Pad  int
}

func (c NullCase) String() string {
	return fmt.Sprintf("nullness v=%s k=%d pad=%d prog: %s", c.V, c.K, c.Pad, c.Prog)
}

func (c NullCase) locals() []string {
	vs := escLocals
	for i := 0; i < c.Pad; i++ {
		vs = append(vs[:len(vs):len(vs)], fmt.Sprintf("pad%d", i))
	}
	return vs
}

// Job builds a fresh core.Problem for the case (see TSCase.Job).
func (c NullCase) Job() *nullness.Job {
	g := lang.BuildCFG(c.Prog)
	a := nullness.New(c.locals(), escFields)
	return &nullness.Job{
		A: a, G: g,
		Q: nullness.Query{Nodes: []int{g.Exit}, V: c.V},
		K: c.K,
	}
}

// NullPool returns the atom pool the nullness cases draw from — the escape
// pool: both clients read the same atom structure, so the generator is
// shared unchanged.
func NullPool() []lang.Atom { return EscPool() }

// RandomNullCase draws a case from the rng.
func RandomNullCase(rng *rand.Rand) NullCase {
	return NullCase{
		Prog: gen.Program(rng, NullPool(), gen.DefaultConfig(3+rng.Intn(8))),
		V:    escLocals[rng.Intn(len(escLocals))],
		K:    kChoices[rng.Intn(len(kChoices))],
	}
}

// tsBatch poses several Want variants of one type-state case as a
// core.BatchProblem: all queries track the same site, so one forward solve
// per run genuinely serves every query — the same sharing shape as the
// driver's TypestateBatch, without the IR plumbing.
type tsBatch struct {
	c     TSCase
	g     *lang.CFG
	wants []uset.Bits
}

var _ core.BatchProblem = (*tsBatch)(nil)

// NewTSBatch builds the batch problem; query i asks for wants[i].
func NewTSBatch(c TSCase, wants []uset.Bits) core.BatchProblem {
	return &tsBatch{c: c, g: lang.BuildCFG(c.Prog), wants: wants}
}

func (b *tsBatch) NumParams() int  { return len(b.c.vars()) }
func (b *tsBatch) NumQueries() int { return len(b.wants) }

func (b *tsBatch) RunForward(bud *budget.Budget, p uset.Set) core.BatchRun {
	a := typestate.New(tsProp(b.c.Prop), tsTracked, b.c.vars())
	res := dataflow.SolveBudget(b.g, a.Initial(), a.Transfer(p), bud)
	return &tsBatchRun{b: b, a: a, res: res}
}

type tsBatchRun struct {
	b   *tsBatch
	a   *typestate.Analysis
	res *dataflow.Result[typestate.State]
}

func (r *tsBatchRun) Check(q int) (bool, lang.Trace) {
	query := typestate.Query{Nodes: []int{r.b.g.Exit}, Want: r.b.wants[q]}
	node, bad, found := typestate.FindFailure(r.a, r.res, query)
	if !found {
		return true, nil
	}
	return false, r.res.Witness(node, bad)
}

func (r *tsBatchRun) Steps() int { return r.res.Steps }

// Backward builds a fresh per-call job: concurrent backward units must not
// share an intern table.
func (b *tsBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []core.ParamCube {
	j := b.c.Job()
	j.Q.Want = b.wants[q]
	return j.Backward(bud, p, t)
}

// escBatch poses one escape query per local of one generated program. The
// escape analysis is query-independent: one forward solve serves all
// queries, as in the driver's EscapeBatch.
type escBatch struct {
	c  EscCase
	g  *lang.CFG
	vs []string
}

var _ core.BatchProblem = (*escBatch)(nil)

// NewEscBatch builds the batch problem; query i asks about local vs[i].
func NewEscBatch(c EscCase, vs []string) core.BatchProblem {
	return &escBatch{c: c, g: lang.BuildCFG(c.Prog), vs: vs}
}

func (b *escBatch) NumParams() int  { return len(b.c.sites()) }
func (b *escBatch) NumQueries() int { return len(b.vs) }

func (b *escBatch) RunForward(bud *budget.Budget, p uset.Set) core.BatchRun {
	a := escape.New(escLocals, escFields, b.c.sites())
	res := dataflow.SolveBudget(b.g, a.Initial(), a.Transfer(p), bud)
	return &escBatchRun{b: b, a: a, res: res}
}

type escBatchRun struct {
	b   *escBatch
	a   *escape.Analysis
	res *dataflow.Result[escape.State]
}

func (r *escBatchRun) Check(q int) (bool, lang.Trace) {
	query := escape.Query{Nodes: []int{r.b.g.Exit}, V: r.b.vs[q]}
	node, bad, found := escape.FindFailure(r.a, r.res, query)
	if !found {
		return true, nil
	}
	return false, r.res.Witness(node, bad)
}

func (r *escBatchRun) Steps() int { return r.res.Steps }

func (b *escBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []core.ParamCube {
	j := b.c.Job()
	j.Q.V = b.vs[q]
	return j.Backward(bud, p, t)
}

// nullBatch poses one nullness query per local of one generated program.
// Like escape, the nullness analysis is query-independent: one forward
// solve serves all queries, as in the driver's NullnessBatch.
type nullBatch struct {
	c  NullCase
	g  *lang.CFG
	vs []string
}

var _ core.BatchProblem = (*nullBatch)(nil)

// NewNullBatch builds the batch problem; query i asks about local vs[i].
func NewNullBatch(c NullCase, vs []string) core.BatchProblem {
	return &nullBatch{c: c, g: lang.BuildCFG(c.Prog), vs: vs}
}

func (b *nullBatch) NumParams() int  { return len(b.c.locals()) + len(escFields) }
func (b *nullBatch) NumQueries() int { return len(b.vs) }

func (b *nullBatch) RunForward(bud *budget.Budget, p uset.Set) core.BatchRun {
	a := nullness.New(b.c.locals(), escFields)
	res := dataflow.SolveBudget(b.g, a.Initial(), a.Transfer(p), bud)
	return &nullBatchRun{b: b, a: a, res: res}
}

type nullBatchRun struct {
	b   *nullBatch
	a   *nullness.Analysis
	res *dataflow.Result[nullness.State]
}

func (r *nullBatchRun) Check(q int) (bool, lang.Trace) {
	query := nullness.Query{Nodes: []int{r.b.g.Exit}, V: r.b.vs[q]}
	node, bad, found := nullness.FindFailure(r.a, r.res, query)
	if !found {
		return true, nil
	}
	return false, r.res.Witness(node, bad)
}

func (r *nullBatchRun) Steps() int { return r.res.Steps }

func (b *nullBatch) Backward(bud *budget.Budget, q int, p uset.Set, t lang.Trace) []core.ParamCube {
	j := b.c.Job()
	j.Q.V = b.vs[q]
	return j.Backward(bud, p, t)
}
