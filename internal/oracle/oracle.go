// Package oracle is the differential testing harness for the TRACER loop:
// a brute-force ground-truth engine plus a seeded metamorphic fuzzer that
// cross-check core.Solve and core.SolveBatch on randomly generated small
// programs for both clients (type-state and thread-escape).
//
// The oracle enumerates all 2^n abstractions of a problem (n ≤ ~14), runs
// the forward analysis under each, and checks three properties of TRACER's
// answer against that ground truth:
//
//  1. Minimality — a Proved result's cost equals the true minimum proving
//     cost (and the returned abstraction really proves).
//  2. Impossibility — Impossible is returned iff no abstraction in the
//     family proves the query.
//  3. Cube soundness — every learned ParamCube contains only abstractions
//     whose forward run actually fails, and each backward pass's cube set
//     covers the abstraction that produced it (the progress guarantee,
//     Theorem 3 clause 1).
//
// On top sit metamorphic checks (parameter permutation invariance, monotone
// padding, batch worker-count and forward-cache invariance) and a fuzz
// driver that minimizes every failing program with the deterministic
// shrinker of internal/oracle/gen before reporting. See the "Ground truth &
// fuzzing" section of ARCHITECTURE.md.
package oracle

import (
	"fmt"
	"math/bits"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// MaxParams caps brute-force enumeration; 2^14 forward runs is the most the
// oracle is willing to pay for one problem.
const MaxParams = 14

// Truth is the brute-force ground truth for one problem: for every
// abstraction (indexed by its parameter bitmask), whether the forward
// analysis proves the query under it.
type Truth struct {
	N      int
	Proves []bool
}

// Enumerate runs the forward analysis under every abstraction of the
// family. It panics when the family is larger than 2^MaxParams — the oracle
// is for small generated problems, not real benchmarks.
func Enumerate(pr core.Problem) Truth {
	n := pr.NumParams()
	if n > MaxParams {
		panic(fmt.Sprintf("oracle: %d parameters exceed the brute-force cap of %d", n, MaxParams))
	}
	t := Truth{N: n, Proves: make([]bool, 1<<n)}
	for mask := range t.Proves {
		t.Proves[mask] = pr.Forward(nil, setOf(mask)).Proved
	}
	return t
}

// setOf converts a parameter bitmask to its abstraction set.
func setOf(mask int) uset.Set {
	var p uset.Set
	for i := 0; mask>>i != 0; i++ {
		if mask&(1<<i) != 0 {
			p = p.Add(i)
		}
	}
	return p
}

// maskOf converts an abstraction set to its parameter bitmask.
func maskOf(p uset.Set) int {
	mask := 0
	for _, i := range p.Elems() {
		mask |= 1 << i
	}
	return mask
}

// ProvesSet reports the ground truth for one abstraction.
func (t Truth) ProvesSet(p uset.Set) bool { return t.Proves[maskOf(p)] }

// Possible reports whether any abstraction proves the query.
func (t Truth) Possible() bool {
	for _, ok := range t.Proves {
		if ok {
			return true
		}
	}
	return false
}

// MinCost returns the minimum |p| over proving abstractions, or -1 when the
// query is impossible.
func (t Truth) MinCost() int {
	min := -1
	for mask, ok := range t.Proves {
		if !ok {
			continue
		}
		if c := bits.OnesCount(uint(mask)); min < 0 || c < min {
			min = c
		}
	}
	return min
}

// pass records one backward call intercepted by the audit wrapper.
type pass struct {
	p     uset.Set
	cubes []core.ParamCube
}

// audited wraps a Problem so every backward pass is retained for
// cube-soundness checking. core.Solve is sequential, so no locking.
type audited struct {
	core.Problem
	passes []pass
}

func (a *audited) Backward(b *budget.Budget, p uset.Set, t lang.Trace) []core.ParamCube {
	cubes := a.Problem.Backward(b, p, t)
	a.passes = append(a.passes, pass{p: p, cubes: cubes})
	return cubes
}

// CheckSolve runs core.Solve on a fresh problem from mk and verifies the
// three oracle properties against a ground truth enumerated on a second
// fresh instance. It returns one human-readable violation per failed check
// (empty means the solver agrees with brute force). opts should leave
// Recorder unset; budgeted options would make Exhausted legitimate.
func CheckSolve(mk func() core.Problem, opts core.Options) []string {
	truth := Enumerate(mk())
	au := &audited{Problem: mk()}
	res, err := core.Solve(au, opts)

	var v []string
	switch res.Status {
	case core.Proved:
		if !truth.Possible() {
			v = append(v, fmt.Sprintf("solver proved with p=%s but no abstraction proves", res.Abstraction))
		} else {
			if !truth.ProvesSet(res.Abstraction) {
				v = append(v, fmt.Sprintf("claimed proving abstraction p=%s does not prove under brute force", res.Abstraction))
			}
			if min := truth.MinCost(); res.Abstraction.Len() != min {
				v = append(v, fmt.Sprintf("proved at cost %d, true minimum is %d", res.Abstraction.Len(), min))
			}
		}
	case core.Impossible:
		if truth.Possible() {
			v = append(v, fmt.Sprintf("solver returned impossible but an abstraction of cost %d proves", truth.MinCost()))
		}
	default:
		// Unbudgeted solves of 2^n ≤ 2^14 families must terminate in at
		// most 2^n iterations; anything else is a loop defect.
		v = append(v, fmt.Sprintf("solver did not resolve: status=%s failure=%q err=%v", res.Status, res.Failure, err))
	}
	v = append(v, checkCubes(truth, au.passes)...)
	return v
}

// checkCubes verifies cube soundness and the progress guarantee for every
// recorded backward pass.
func checkCubes(truth Truth, passes []pass) []string {
	var v []string
	for i, ps := range passes {
		covered := false
		for _, c := range ps.cubes {
			if c.Broken() {
				v = append(v, fmt.Sprintf("backward pass %d (p=%s): contradictory cube %s", i+1, ps.p, c))
				continue
			}
			if c.Contains(ps.p) {
				covered = true
			}
			for mask, proves := range truth.Proves {
				if proves && c.Contains(setOf(mask)) {
					v = append(v, fmt.Sprintf("backward pass %d (p=%s): cube %s contains proving abstraction %s",
						i+1, ps.p, c, setOf(mask)))
					break // one witness per cube is enough
				}
			}
		}
		if !covered {
			v = append(v, fmt.Sprintf("backward pass %d: cube set %s does not cover its own abstraction p=%s",
				i+1, renderCubes(ps.cubes), ps.p))
		}
	}
	return v
}

func renderCubes(cs []core.ParamCube) string {
	if len(cs) == 0 {
		return "[]"
	}
	s := "["
	for i, c := range cs {
		if i > 0 {
			s += "; "
		}
		s += c.String()
	}
	return s + "]"
}
