package oracle

import (
	"testing"

	"tracer/internal/core"
	"tracer/internal/lang"
	"tracer/internal/nullness"
	"tracer/internal/uset"
)

// nullnessHandJob builds the nullness analogue of the paper's Fig 1(a):
//
//	x = new h; y = x; if (*) z = null; check(y non-nil)
//
// Proving y non-nil at exit needs exactly the cells {x, y} tracked: an
// untracked x degrades to ⊤ at the allocation, and an untracked y degrades
// to ⊤ at the copy, so the hand-computed minimum cost is 2. The z query is
// impossible — z is null on the branch (and uninitialized otherwise) under
// every abstraction.
func nullnessHandJob(v string) *nullness.Job {
	prog := lang.SeqN(
		lang.Atoms(lang.Alloc{V: "x", H: "h"}),
		lang.Atoms(lang.Move{Dst: "y", Src: "x"}),
		lang.If(lang.Atoms(lang.MoveNull{V: "z"})),
	)
	g := lang.BuildCFG(prog)
	locals, fields := nullness.Universe(g)
	a := nullness.New(locals, fields)
	return &nullness.Job{A: a, G: g, Q: nullness.Query{Nodes: []int{g.Exit}, V: v}, K: 1}
}

// TestNullnessHandExample runs the brute-force oracle on the hand example:
// the enumerated minimum must equal the hand-computed cost 2 ({x, y}), the
// solver must find exactly that abstraction, the z query must enumerate as
// impossible, and the full differential check must pass for both queries
// under the beam widths the paper discusses (k = 1 and k = 0).
func TestNullnessHandExample(t *testing.T) {
	truth := Enumerate(nullnessHandJob("y"))
	if !truth.Possible() {
		t.Fatal("check(y) enumerated as impossible; hand computation proves it at cost 2")
	}
	if got := truth.MinCost(); got != 2 {
		t.Fatalf("check(y) enumerated minimum cost = %d, hand-computed cost is 2", got)
	}
	for _, k := range []int{1, 0} {
		if v := CheckSolve(func() core.Problem { j := nullnessHandJob("y"); j.K = k; return j }, core.Options{}); len(v) != 0 {
			t.Fatalf("k=%d oracle violations: %v", k, v)
		}
	}

	res, err := core.Solve(nullnessHandJob("y"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := nullnessHandJob("y")
	want := uset.New(j.A.Locals.ID("x")).Add(j.A.Locals.ID("y"))
	if !res.Abstraction.Equal(want) {
		t.Fatalf("abstraction = %v, want {x, y}", res.Abstraction)
	}

	if truth := Enumerate(nullnessHandJob("z")); truth.Possible() {
		t.Fatal("check(z) enumerated as possible; z is null on the branch under every abstraction")
	}
	if v := CheckSolve(func() core.Problem { return nullnessHandJob("z") }, core.Options{}); len(v) != 0 {
		t.Fatalf("check(z) oracle violations: %v", v)
	}
}

// TestFuzzNullnessProperties is the nullness twin of the tier-1 fixed-seed
// sweeps: 2000 cases through minimality, impossibility, and cube soundness.
func TestFuzzNullnessProperties(t *testing.T) {
	if ds := FuzzNullness(FuzzOptions{Seed: 1, N: 2000}); len(ds) != 0 {
		t.Fatalf("%d discrepancies, first:\n%s", len(ds), ds[0])
	}
}

// TestFuzzNullnessMetamorphic is the nullness metamorphic sweep (permutation,
// padding, delta-vs-cold, batch worker/cache invariance, warm seeding).
func TestFuzzNullnessMetamorphic(t *testing.T) {
	if ds := FuzzNullness(FuzzOptions{Seed: 42, N: 300, Meta: true}); len(ds) != 0 {
		t.Fatalf("%d discrepancies, first:\n%s", len(ds), ds[0])
	}
}
