package gen

import (
	"math/rand"
	"strings"
	"testing"

	"tracer/internal/lang"
)

var testUniverse = Universe{
	Vars:    []string{"x", "y"},
	Sites:   []string{"h", "g"},
	Fields:  []string{"f"},
	Globals: []string{"G"},
	Methods: []string{"open", "close"},
}

// TestPoolCoversEveryAtomKind: the cross-product pool contains every atom
// kind the language defines, in a deterministic order.
func TestPoolCoversEveryAtomKind(t *testing.T) {
	pool := Pool(testUniverse)
	kinds := map[string]bool{}
	for _, a := range pool {
		switch a.(type) {
		case lang.Alloc:
			kinds["alloc"] = true
		case lang.Move:
			kinds["move"] = true
		case lang.MoveNull:
			kinds["movenull"] = true
		case lang.GlobalRead:
			kinds["gread"] = true
		case lang.GlobalWrite:
			kinds["gwrite"] = true
		case lang.Load:
			kinds["load"] = true
		case lang.Store:
			kinds["store"] = true
		case lang.Invoke:
			kinds["invoke"] = true
		}
	}
	if len(kinds) != 8 {
		t.Fatalf("pool covers %d atom kinds, want 8: %v", len(kinds), kinds)
	}
	again := Pool(testUniverse)
	if len(again) != len(pool) {
		t.Fatalf("pool is not deterministic: %d vs %d atoms", len(again), len(pool))
	}
	for i := range pool {
		if pool[i].String() != again[i].String() {
			t.Fatalf("pool order differs at %d: %s vs %s", i, pool[i], again[i])
		}
	}
}

// TestProgramDeterministicAndSized: the generator is a pure function of the
// seed and produces exactly the requested number of atoms.
func TestProgramDeterministicAndSized(t *testing.T) {
	pool := Pool(testUniverse)
	for seed := int64(0); seed < 50; seed++ {
		cfg := DefaultConfig(1 + int(seed%9))
		a := Program(rand.New(rand.NewSource(seed)), pool, cfg)
		b := Program(rand.New(rand.NewSource(seed)), pool, cfg)
		if a.String() != b.String() {
			t.Fatalf("seed %d: program not deterministic:\n%s\nvs\n%s", seed, a, b)
		}
		if got := countAtoms(a); got != cfg.Size {
			t.Fatalf("seed %d: %d atoms, want %d in %s", seed, got, cfg.Size, a)
		}
	}
}

func countAtoms(p lang.Prog) int {
	switch p := p.(type) {
	case lang.Atomic:
		return 1
	case lang.Seq:
		return countAtoms(p.Fst) + countAtoms(p.Snd)
	case lang.Choice:
		return countAtoms(p.Left) + countAtoms(p.Right)
	case lang.Star:
		return countAtoms(p.Body)
	}
	return 0
}

// TestRenameRoundTrip: renaming with a permutation and then its inverse is
// the identity, and renaming rewrites every occurrence.
func TestRenameRoundTrip(t *testing.T) {
	pool := Pool(testUniverse)
	perm := map[string]string{"x": "y", "y": "x"}
	sites := map[string]string{"h": "g", "g": "h"}
	for seed := int64(0); seed < 20; seed++ {
		p := Program(rand.New(rand.NewSource(seed)), pool, DefaultConfig(8))
		back := Rename(Rename(p, perm, sites), perm, sites)
		if p.String() != back.String() {
			t.Fatalf("seed %d: rename round trip differs:\n%s\nvs\n%s", seed, p, back)
		}
	}
	one := Rename(lang.Atoms(lang.Alloc{V: "x", H: "h"}, lang.Move{Dst: "x", Src: "y"}), perm, sites)
	if got, want := one.String(), "y = new g; y = x"; got != want {
		t.Fatalf("rename = %q, want %q", got, want)
	}
}

// TestShrinkDeterministicAndMinimal: shrinking a program against a
// predicate ("mentions an invoke of open") always converges to the same
// single-atom witness, from any seed program containing one.
func TestShrinkDeterministicAndMinimal(t *testing.T) {
	pool := Pool(testUniverse)
	fails := func(p lang.Prog) bool {
		return strings.Contains(p.String(), ".open()")
	}
	for seed := int64(0); seed < 40; seed++ {
		p := Program(rand.New(rand.NewSource(seed)), pool, DefaultConfig(10))
		if !fails(p) {
			continue
		}
		s1 := Shrink(p, fails)
		s2 := Shrink(p, fails)
		if s1.String() != s2.String() {
			t.Fatalf("seed %d: shrink not deterministic: %s vs %s", seed, s1, s2)
		}
		if Size(s1) != 1 {
			t.Fatalf("seed %d: shrink left size %d: %s", seed, Size(s1), s1)
		}
		if !fails(s1) {
			t.Fatalf("seed %d: shrunk program no longer fails: %s", seed, s1)
		}
	}
}

// TestShrinkNeverLosesTheFailure: the invariant that matters — whatever the
// predicate, the shrunk program still satisfies it.
func TestShrinkNeverLosesTheFailure(t *testing.T) {
	pool := Pool(testUniverse)
	preds := []func(lang.Prog) bool{
		func(p lang.Prog) bool { return countAtoms(p) >= 3 },
		func(p lang.Prog) bool { return strings.Contains(p.String(), "new h") },
		func(p lang.Prog) bool {
			s := p.String()
			return strings.Contains(s, "new h") && strings.Contains(s, "y = x")
		},
	}
	for seed := int64(0); seed < 30; seed++ {
		p := Program(rand.New(rand.NewSource(seed)), pool, DefaultConfig(12))
		for i, fails := range preds {
			if !fails(p) {
				continue
			}
			s := Shrink(p, fails)
			if !fails(s) {
				t.Fatalf("seed %d pred %d: shrunk program lost the failure: %s", seed, i, s)
			}
			if Size(s) > Size(p) {
				t.Fatalf("seed %d pred %d: shrink grew the program", seed, i)
			}
		}
	}
}
