// Package gen generates, renames, and shrinks random programs of the lang
// syntax. It is the program-construction half of the differential oracle
// (internal/oracle): the oracle enumerates ground truth for programs this
// package draws, and minimizes failing ones with the deterministic shrinker
// before reporting.
//
// The package deliberately depends only on lang (and math/rand), so the
// client packages' own test suites can reuse the atom pools without an
// import cycle.
package gen

import (
	"math/rand"

	"tracer/internal/lang"
)

// Universe fixes the vocabulary a generated program draws from: local
// variables, allocation sites, instance fields, global (static) variables,
// and method names. Keeping the vocabulary fixed — rather than derived from
// the generated program — keeps parameter indices stable under shrinking
// and renaming.
type Universe struct {
	Vars    []string
	Sites   []string
	Fields  []string
	Globals []string
	Methods []string
}

// Pool builds the full cross-product atom pool of the universe, in a fixed
// deterministic order: allocations, copies, null assignments, global
// reads/writes, field loads/stores, and method invocations. It generalizes
// the hand-listed pools the client soundness suites started from.
func Pool(u Universe) []lang.Atom {
	var out []lang.Atom
	for _, v := range u.Vars {
		for _, h := range u.Sites {
			out = append(out, lang.Alloc{V: v, H: h})
		}
	}
	for _, d := range u.Vars {
		for _, s := range u.Vars {
			out = append(out, lang.Move{Dst: d, Src: s})
		}
	}
	for _, v := range u.Vars {
		out = append(out, lang.MoveNull{V: v})
	}
	for _, v := range u.Vars {
		for _, g := range u.Globals {
			out = append(out, lang.GlobalRead{V: v, G: g}, lang.GlobalWrite{G: g, V: v})
		}
	}
	for _, d := range u.Vars {
		for _, s := range u.Vars {
			for _, f := range u.Fields {
				out = append(out, lang.Load{Dst: d, Src: s, F: f}, lang.Store{Dst: d, F: f, Src: s})
			}
		}
	}
	for _, v := range u.Vars {
		for _, m := range u.Methods {
			out = append(out, lang.Invoke{V: v, M: m})
		}
	}
	return out
}

// Config tunes Program.
type Config struct {
	// Size is the target number of atoms (≥ 1).
	Size int
	// Depth bounds the nesting of choice and loop nodes.
	Depth int
	// PChoice and PStar are the probabilities that a composite node is a
	// nondeterministic choice or a loop; the remainder is sequencing.
	PChoice, PStar float64
}

// DefaultConfig is a reasonable shape for oracle-sized programs: mostly
// straight-line code with some branching and an occasional loop.
func DefaultConfig(size int) Config {
	return Config{Size: size, Depth: 3, PChoice: 0.25, PStar: 0.10}
}

// Program draws a random program of exactly cfg.Size atoms from the pool.
// The same (rng sequence, pool, cfg) always yields the same program.
func Program(rng *rand.Rand, pool []lang.Atom, cfg Config) lang.Prog {
	size := cfg.Size
	if size < 1 {
		size = 1
	}
	return genProg(rng, pool, size, cfg.Depth, cfg)
}

func genProg(rng *rand.Rand, pool []lang.Atom, size, depth int, cfg Config) lang.Prog {
	if size <= 1 {
		return lang.Atomic{A: pool[rng.Intn(len(pool))]}
	}
	if depth > 0 {
		switch r := rng.Float64(); {
		case r < cfg.PChoice:
			k := 1 + rng.Intn(size-1)
			return lang.Choice{
				Left:  genProg(rng, pool, k, depth-1, cfg),
				Right: genProg(rng, pool, size-k, depth-1, cfg),
			}
		case r < cfg.PChoice+cfg.PStar:
			return lang.Star{Body: genProg(rng, pool, size, depth-1, cfg)}
		}
	}
	k := 1 + rng.Intn(size-1)
	return lang.Seq{
		Fst: genProg(rng, pool, k, depth, cfg),
		Snd: genProg(rng, pool, size-k, depth, cfg),
	}
}

// Rename rewrites every atom of p, substituting local variable names via
// vars and allocation site names via sites (missing keys are left as-is;
// nil maps are identity). Fields, globals, and methods are untouched. The
// metamorphic permutation check uses it: solving a consistently renamed
// program must give a correspondingly permuted answer.
func Rename(p lang.Prog, vars, sites map[string]string) lang.Prog {
	sub := func(m map[string]string, k string) string {
		if r, ok := m[k]; ok {
			return r
		}
		return k
	}
	switch p := p.(type) {
	case lang.Skip:
		return p
	case lang.Atomic:
		switch a := p.A.(type) {
		case lang.Alloc:
			return lang.Atomic{A: lang.Alloc{V: sub(vars, a.V), H: sub(sites, a.H)}}
		case lang.Move:
			return lang.Atomic{A: lang.Move{Dst: sub(vars, a.Dst), Src: sub(vars, a.Src)}}
		case lang.MoveNull:
			return lang.Atomic{A: lang.MoveNull{V: sub(vars, a.V)}}
		case lang.GlobalWrite:
			return lang.Atomic{A: lang.GlobalWrite{G: a.G, V: sub(vars, a.V)}}
		case lang.GlobalRead:
			return lang.Atomic{A: lang.GlobalRead{V: sub(vars, a.V), G: a.G}}
		case lang.Load:
			return lang.Atomic{A: lang.Load{Dst: sub(vars, a.Dst), Src: sub(vars, a.Src), F: a.F}}
		case lang.Store:
			return lang.Atomic{A: lang.Store{Dst: sub(vars, a.Dst), F: a.F, Src: sub(vars, a.Src)}}
		case lang.Invoke:
			return lang.Atomic{A: lang.Invoke{V: sub(vars, a.V), M: a.M}}
		}
		return p
	case lang.Seq:
		return lang.Seq{Fst: Rename(p.Fst, vars, sites), Snd: Rename(p.Snd, vars, sites)}
	case lang.Choice:
		return lang.Choice{Left: Rename(p.Left, vars, sites), Right: Rename(p.Right, vars, sites)}
	case lang.Star:
		return lang.Star{Body: Rename(p.Body, vars, sites)}
	}
	return p
}

// Size counts non-Skip syntax nodes. The shrinker accepts only strictly
// size-decreasing replacements, which is what makes it terminate.
func Size(p lang.Prog) int {
	switch p := p.(type) {
	case lang.Atomic:
		return 1
	case lang.Seq:
		return 1 + Size(p.Fst) + Size(p.Snd)
	case lang.Choice:
		return 1 + Size(p.Left) + Size(p.Right)
	case lang.Star:
		return 1 + Size(p.Body)
	}
	return 0
}

// Shrink greedily minimizes a program that makes fails true: it repeatedly
// applies the first structural reduction (in a fixed pre-order candidate
// sequence) that both shrinks the program and keeps fails true, until no
// reduction applies. fails must be deterministic; given that, Shrink is a
// pure function of p, so the same failing seed always reports the same
// minimized program.
func Shrink(p lang.Prog, fails func(lang.Prog) bool) lang.Prog {
	for {
		improved := false
		for _, c := range reductions(p) {
			if Size(c) < Size(p) && fails(c) {
				p = c
				improved = true
				break
			}
		}
		if !improved {
			return p
		}
	}
}

// reductions yields the single-step reductions of p in deterministic
// pre-order: replace the node with Skip, promote each child, then recurse
// into children left to right.
func reductions(p lang.Prog) []lang.Prog {
	var out []lang.Prog
	switch p := p.(type) {
	case lang.Atomic:
		out = append(out, lang.Skip{})
	case lang.Seq:
		out = append(out, lang.Skip{}, p.Fst, p.Snd)
		for _, c := range reductions(p.Fst) {
			out = append(out, lang.Seq{Fst: c, Snd: p.Snd})
		}
		for _, c := range reductions(p.Snd) {
			out = append(out, lang.Seq{Fst: p.Fst, Snd: c})
		}
	case lang.Choice:
		out = append(out, lang.Skip{}, p.Left, p.Right)
		for _, c := range reductions(p.Left) {
			out = append(out, lang.Choice{Left: c, Right: p.Right})
		}
		for _, c := range reductions(p.Right) {
			out = append(out, lang.Choice{Left: p.Left, Right: c})
		}
	case lang.Star:
		out = append(out, lang.Skip{}, p.Body)
		for _, c := range reductions(p.Body) {
			out = append(out, lang.Star{Body: c})
		}
	}
	return out
}
