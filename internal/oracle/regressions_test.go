package oracle

import (
	"strings"
	"testing"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/lang"
	"tracer/internal/uset"
)

// This file holds cross-package regressions from the differential bug
// burn-down. The two bugs the oracle's construction surfaced have their
// shrunk regressions in the owning packages:
//
//   - internal/core/progress_test.go — contradictory (Pos ∩ Neg ≠ ∅) cubes
//     were silently dropped by clause canonicalization, looping the solver
//     instead of failing with a diagnostic;
//   - internal/explain/divergence_test.go — the narrator recomputed its own
//     cubes and could silently diverge from what the solver learned.
//
// The seeded sweep beyond those (12 000 base cases per client plus 2 000
// metamorphic cases per client, seeds 100000+i / 500000+i) found no further
// discrepancies. The tests below instead pin the oracle's own detection
// power: each deliberately buggy problem must trip the exact property that
// would have caught a real solver bug — a meta-regression guarding against
// the oracle rotting into a rubber stamp.

// overBlockingProblem is provable at {0} but its backward pass returns the
// universal cube, blocking every abstraction — the proving ones included.
// A sound oracle must flag both the cube and the bogus Impossible verdict.
type overBlockingProblem struct{}

func (overBlockingProblem) NumParams() int { return 2 }

func (overBlockingProblem) Forward(_ *budget.Budget, p uset.Set) core.Outcome {
	if p.Has(0) {
		return core.Outcome{Proved: true, Steps: 1}
	}
	return core.Outcome{Trace: lang.Trace{lang.Invoke{V: "x", M: "m"}}, Steps: 1}
}

func (overBlockingProblem) Backward(*budget.Budget, uset.Set, lang.Trace) []core.ParamCube {
	return []core.ParamCube{{}} // empty Pos and Neg: contains every abstraction
}

func TestOracleFlagsOverBlockingBackward(t *testing.T) {
	v := CheckSolve(func() core.Problem { return overBlockingProblem{} }, core.Options{})
	wantCube := false
	wantVerdict := false
	for _, s := range v {
		if strings.Contains(s, "contains proving abstraction") {
			wantCube = true
		}
		if strings.Contains(s, "impossible but an abstraction") {
			wantVerdict = true
		}
	}
	if !wantCube || !wantVerdict {
		t.Fatalf("violations = %v, want a cube-soundness and an impossibility flag", v)
	}
}

// brokenCubeProblem returns a contradictory cube from every backward pass.
// Since the learn-site fix, core.Solve fails fast on it; the oracle must
// still independently flag the cube (property 3) and the non-resolution.
type brokenCubeProblem struct{}

func (brokenCubeProblem) NumParams() int { return 2 }

func (brokenCubeProblem) Forward(_ *budget.Budget, p uset.Set) core.Outcome {
	if p.Has(1) {
		return core.Outcome{Proved: true, Steps: 1}
	}
	return core.Outcome{Trace: lang.Trace{lang.Invoke{V: "x", M: "m"}}, Steps: 1}
}

func (brokenCubeProblem) Backward(*budget.Budget, uset.Set, lang.Trace) []core.ParamCube {
	return []core.ParamCube{{Pos: uset.New(0), Neg: uset.New(0)}}
}

func TestOracleFlagsContradictoryCube(t *testing.T) {
	v := CheckSolve(func() core.Problem { return brokenCubeProblem{} }, core.Options{})
	sawBroken := false
	for _, s := range v {
		if strings.Contains(s, "contradictory cube") {
			sawBroken = true
		}
	}
	if !sawBroken {
		t.Fatalf("violations = %v, want a contradictory-cube flag", v)
	}
}

// nonCoveringProblem returns a well-formed cube that never contains the
// abstraction that produced the counterexample, violating the progress
// guarantee (Theorem 3 clause 1). The oracle must flag the uncovered pass.
type nonCoveringProblem struct{}

func (nonCoveringProblem) NumParams() int { return 2 }

func (nonCoveringProblem) Forward(_ *budget.Budget, p uset.Set) core.Outcome {
	if p.Has(0) && p.Has(1) {
		return core.Outcome{Proved: true, Steps: 1}
	}
	return core.Outcome{Trace: lang.Trace{lang.Invoke{V: "x", M: "m"}}, Steps: 1}
}

func (nonCoveringProblem) Backward(_ *budget.Budget, p uset.Set, _ lang.Trace) []core.ParamCube {
	// Pos = {0} never covers the first counterexample's p = {}.
	return []core.ParamCube{{Pos: uset.New(0), Neg: uset.New(1)}}
}

func TestOracleFlagsUncoveredProgress(t *testing.T) {
	v := CheckSolve(func() core.Problem { return nonCoveringProblem{} }, core.Options{})
	sawUncovered := false
	for _, s := range v {
		if strings.Contains(s, "does not cover its own abstraction") {
			sawUncovered = true
		}
	}
	if !sawUncovered {
		t.Fatalf("violations = %v, want a progress-guarantee flag", v)
	}
}

// wrongMinimumProblem simulates a solver being handed a family where the
// oracle's enumeration disagrees with a Proved cost: Forward is inconsistent
// between the enumeration instance and the solve instance (the constructor
// flag flips), mimicking a nondeterministic client. The minimality property
// must flag the cost gap.
type wrongMinimumProblem struct {
	cheap bool // when set, {1} alone proves; otherwise only {0, 1} does
}

func (w *wrongMinimumProblem) NumParams() int { return 2 }

func (w *wrongMinimumProblem) Forward(_ *budget.Budget, p uset.Set) core.Outcome {
	if p.Has(1) && (w.cheap || p.Has(0)) {
		return core.Outcome{Proved: true, Steps: 1}
	}
	return core.Outcome{Trace: lang.Trace{lang.Invoke{V: "x", M: "m"}}, Steps: 1}
}

func (w *wrongMinimumProblem) Backward(_ *budget.Budget, p uset.Set, _ lang.Trace) []core.ParamCube {
	// Sound for the expensive variant: block the tried abstraction exactly.
	full := uset.New(0, 1)
	return []core.ParamCube{{Pos: p, Neg: full.Diff(p)}}
}

func TestOracleFlagsWrongMinimum(t *testing.T) {
	instances := 0
	mk := func() core.Problem {
		instances++
		// First instance feeds Enumerate (truth: min cost 1); the second is
		// solved and only proves at cost 2.
		return &wrongMinimumProblem{cheap: instances == 1}
	}
	v := CheckSolve(mk, core.Options{})
	sawCost := false
	for _, s := range v {
		if strings.Contains(s, "true minimum is") {
			sawCost = true
		}
	}
	if !sawCost {
		t.Fatalf("violations = %v, want a minimality flag", v)
	}
}
