package oracle

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"tracer/internal/core"
	"tracer/internal/escape"
	"tracer/internal/lang"
	"tracer/internal/nullness"
	"tracer/internal/oracle/gen"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// FuzzOptions configures a fuzz run. Case i derives its rng from Seed+i, so
// any reported case replays in isolation from its own seed.
type FuzzOptions struct {
	Seed int64
	N    int
	// Meta additionally runs the metamorphic checks (permutation, padding,
	// batch invariance) on every case; it multiplies the per-case cost.
	Meta bool
}

// Discrepancy is one confirmed oracle violation: the case (with its program
// already minimized by the deterministic shrinker) and the violated
// properties. Replay with the recorded seed, or rebuild the case from its
// rendering.
type Discrepancy struct {
	Client     string
	Seed       int64
	Case       string
	Violations []string
}

func (d Discrepancy) String() string {
	s := fmt.Sprintf("%s seed=%d: %s", d.Client, d.Seed, d.Case)
	for _, v := range d.Violations {
		s += "\n  - " + v
	}
	return s
}

// FuzzTypestate runs o.N seeded type-state cases through the oracle,
// shrinking and reporting every violating program.
func FuzzTypestate(o FuzzOptions) []Discrepancy {
	var out []Discrepancy
	for i := 0; i < o.N; i++ {
		seed := o.Seed + int64(i)
		c := RandomTSCase(rand.New(rand.NewSource(seed)))
		if len(CheckTSCase(c, o.Meta)) == 0 {
			continue
		}
		c.Prog = gen.Shrink(c.Prog, func(p lang.Prog) bool {
			cc := c
			cc.Prog = p
			return len(CheckTSCase(cc, o.Meta)) > 0
		})
		out = append(out, Discrepancy{
			Client: "typestate", Seed: seed, Case: c.String(),
			Violations: CheckTSCase(c, o.Meta),
		})
	}
	return out
}

// FuzzEscape runs o.N seeded thread-escape cases through the oracle,
// shrinking and reporting every violating program.
func FuzzEscape(o FuzzOptions) []Discrepancy {
	var out []Discrepancy
	for i := 0; i < o.N; i++ {
		seed := o.Seed + int64(i)
		c := RandomEscCase(rand.New(rand.NewSource(seed)))
		if len(CheckEscCase(c, o.Meta)) == 0 {
			continue
		}
		c.Prog = gen.Shrink(c.Prog, func(p lang.Prog) bool {
			cc := c
			cc.Prog = p
			return len(CheckEscCase(cc, o.Meta)) > 0
		})
		out = append(out, Discrepancy{
			Client: "escape", Seed: seed, Case: c.String(),
			Violations: CheckEscCase(c, o.Meta),
		})
	}
	return out
}

// FuzzNullness runs o.N seeded null-dereference cases through the oracle,
// shrinking and reporting every violating program.
func FuzzNullness(o FuzzOptions) []Discrepancy {
	var out []Discrepancy
	for i := 0; i < o.N; i++ {
		seed := o.Seed + int64(i)
		c := RandomNullCase(rand.New(rand.NewSource(seed)))
		if len(CheckNullCase(c, o.Meta)) == 0 {
			continue
		}
		c.Prog = gen.Shrink(c.Prog, func(p lang.Prog) bool {
			cc := c
			cc.Prog = p
			return len(CheckNullCase(cc, o.Meta)) > 0
		})
		out = append(out, Discrepancy{
			Client: "nullness", Seed: seed, Case: c.String(),
			Violations: CheckNullCase(c, o.Meta),
		})
	}
	return out
}

// CheckTSCase verifies one type-state case: the three oracle properties,
// and (with meta) permutation invariance, monotone padding, and batch
// worker/cache invariance.
func CheckTSCase(c TSCase, meta bool) []string {
	v := CheckSolve(func() core.Problem { return c.Job() }, core.Options{})
	if !meta {
		return v
	}
	base, _ := core.Solve(c.Job(), core.Options{})

	// Permutation invariance: consistently renaming the variables must not
	// change the verdict or the minimum cost (|p| is permutation-invariant).
	perm := rotation(tsVars)
	renamed := c
	renamed.Prog = gen.Rename(c.Prog, perm, nil)
	if d := compareSolve(base, renamed.Job(), "variable permutation"); d != "" {
		v = append(v, d)
	}

	// Monotone padding: never-referenced parameters cannot change what is
	// provable or how much the cheapest proof costs.
	padded := c
	padded.Pad = 2
	if d := compareSolve(base, padded.Job(), "parameter padding"); d != "" {
		v = append(v, d)
	}

	if d := compareDelta(base, func() *typestate.Job { j := c.Job(); j.NoDelta = true; return j }()); d != "" {
		v = append(v, d)
	}
	v = append(v, checkTSBatch(c)...)
	v = append(v, checkWarmSeed(func() core.Problem { return c.Job() })...)
	return v
}

// CheckEscCase verifies one thread-escape case (see CheckTSCase).
func CheckEscCase(c EscCase, meta bool) []string {
	v := CheckSolve(func() core.Problem { return c.Job() }, core.Options{})
	if !meta {
		return v
	}
	base, _ := core.Solve(c.Job(), core.Options{})

	// Permutation invariance over both name spaces: locals and sites.
	vperm, hperm := rotation(escLocals), rotation(escSites)
	renamed := c
	renamed.Prog = gen.Rename(c.Prog, vperm, hperm)
	renamed.V = vperm[c.V]
	if d := compareSolve(base, renamed.Job(), "local/site permutation"); d != "" {
		v = append(v, d)
	}

	padded := c
	padded.Pad = 2
	if d := compareSolve(base, padded.Job(), "parameter padding"); d != "" {
		v = append(v, d)
	}

	if d := compareDelta(base, func() *escape.Job { j := c.Job(); j.NoDelta = true; return j }()); d != "" {
		v = append(v, d)
	}
	v = append(v, checkEscBatch(c)...)
	v = append(v, checkWarmSeed(func() core.Problem { return c.Job() })...)
	return v
}

// CheckNullCase verifies one null-dereference case (see CheckTSCase).
func CheckNullCase(c NullCase, meta bool) []string {
	v := CheckSolve(func() core.Problem { return c.Job() }, core.Options{})
	if !meta {
		return v
	}
	base, _ := core.Solve(c.Job(), core.Options{})

	// Permutation invariance over both name spaces the generator renames:
	// locals (the tracked cells) and allocation sites (nullness-neutral).
	vperm, hperm := rotation(escLocals), rotation(escSites)
	renamed := c
	renamed.Prog = gen.Rename(c.Prog, vperm, hperm)
	renamed.V = vperm[c.V]
	if d := compareSolve(base, renamed.Job(), "local/site permutation"); d != "" {
		v = append(v, d)
	}

	padded := c
	padded.Pad = 2
	if d := compareSolve(base, padded.Job(), "parameter padding"); d != "" {
		v = append(v, d)
	}

	if d := compareDelta(base, func() *nullness.Job { j := c.Job(); j.NoDelta = true; return j }()); d != "" {
		v = append(v, d)
	}
	v = append(v, checkNullBatch(c)...)
	v = append(v, checkWarmSeed(func() core.Problem { return c.Job() })...)
	return v
}

// checkWarmSeed replays the warm-start contract (internal/warm) at the core
// level: a cold solve records its accepted blocking cubes via OnLearn, the
// cubes round-trip through JSON exactly like the disk store's clause shape,
// and a second solve seeded with them must reproduce the verdict and
// abstraction — in at most one CEGAR iteration, since the seeds already
// block every refuted candidate the cold run saw.
func checkWarmSeed(mk func() core.Problem) []string {
	var cubes []core.ParamCube
	cold, err := core.Solve(mk(), core.Options{
		OnLearn: func(_ int, _ uset.Set, _ lang.Trace, cs []core.ParamCube) {
			cubes = append(cubes, cs...)
		},
	})
	if err != nil {
		return []string{fmt.Sprintf("warm seed: cold solve failed: %v", err)}
	}
	if cold.Status != core.Proved && cold.Status != core.Impossible {
		return nil // no verdict to warm-start toward
	}
	type wire struct {
		Pos, Neg []int
	}
	ws := make([]wire, len(cubes))
	for i, c := range cubes {
		ws[i] = wire{Pos: c.Pos.Elems(), Neg: c.Neg.Elems()}
	}
	data, err := json.Marshal(ws)
	if err != nil {
		return []string{fmt.Sprintf("warm seed: marshal: %v", err)}
	}
	var back []wire
	if err := json.Unmarshal(data, &back); err != nil {
		return []string{fmt.Sprintf("warm seed: unmarshal: %v", err)}
	}
	seed := make([]core.ParamCube, len(back))
	for i, w := range back {
		seed[i] = core.ParamCube{Pos: uset.New(w.Pos...), Neg: uset.New(w.Neg...)}
	}
	warm, err := core.Solve(mk(), core.Options{Seed: seed})
	if err != nil {
		return []string{fmt.Sprintf("warm seed: warm solve failed: %v", err)}
	}
	var v []string
	if warm.Status != cold.Status || !warm.Abstraction.Equal(cold.Abstraction) {
		v = append(v, fmt.Sprintf("warm seed changed the resolution: cold %s/%s, warm %s/%s",
			cold.Status, cold.Abstraction, warm.Status, warm.Abstraction))
	}
	if warm.Iterations > 1 {
		v = append(v, fmt.Sprintf("warm solve took %d iterations (want ≤1 with every cold clause seeded)", warm.Iterations))
	}
	return v
}

// rotation maps each name to the next one, cyclically — a fixed non-trivial
// permutation.
func rotation(names []string) map[string]string {
	m := make(map[string]string, len(names))
	for i, n := range names {
		m[n] = names[(i+1)%len(names)]
	}
	return m
}

// compareSolve solves the variant problem and reports a divergence from the
// base resolution: the verdict and, when proved, the cost must match.
func compareSolve(base core.Result, variant core.Problem, what string) string {
	res, _ := core.Solve(variant, core.Options{})
	if res.Status != base.Status {
		return fmt.Sprintf("%s changed the verdict: %s vs %s", what, base.Status, res.Status)
	}
	if res.Status == core.Proved && res.Abstraction.Len() != base.Abstraction.Len() {
		return fmt.Sprintf("%s changed the minimum cost: %d vs %d",
			what, base.Abstraction.Len(), res.Abstraction.Len())
	}
	return ""
}

// compareDelta solves the cold-executor variant of a query (NoDelta set on
// the job) and reports any divergence from the base solve, which ran with
// the delta-incremental forward engine. The single-query delta path replays
// step-identically, so the whole resolution — verdict, abstraction,
// iteration count, learned clauses, and forward steps — must match.
func compareDelta(base core.Result, cold core.Problem) string {
	res, _ := core.Solve(cold, core.Options{})
	if res.Status != base.Status || !res.Abstraction.Equal(base.Abstraction) {
		return fmt.Sprintf("delta disable changed the resolution: %s/%s vs %s/%s",
			base.Status, base.Abstraction, res.Status, res.Abstraction)
	}
	if res.Iterations != base.Iterations || res.Clauses != base.Clauses || res.ForwardSteps != base.ForwardSteps {
		return fmt.Sprintf("delta disable changed the trajectory: %d iters / %d clauses / %d steps vs %d / %d / %d",
			base.Iterations, base.Clauses, base.ForwardSteps, res.Iterations, res.Clauses, res.ForwardSteps)
	}
	return ""
}

// batchVariants is the worker-count × forward-cache × delta-engine grid
// every batch metamorphic check sweeps. -1 disables the cross-round memo;
// NoDelta forces every forward run to solve cold.
var batchVariants = []core.Options{
	{Workers: 1},
	{Workers: 4},
	{Workers: 4, FwdCacheSize: -1},
	{Workers: 4, NoDelta: true},
}

// checkTSBatch cross-checks SolveBatch against per-query Solve on three
// Want variants of the case, across the worker/cache grid.
func checkTSBatch(c TSCase) []string {
	prop := tsProp(c.Prop)
	full := uset.Bits(1<<len(prop.States) - 1)
	wants := []uset.Bits{c.Want, full, uset.Bits(0).Add(prop.Init)}
	solo := make([]core.Result, len(wants))
	for i, w := range wants {
		j := c.Job()
		j.Q.Want = w
		solo[i], _ = core.Solve(j, core.Options{})
	}
	var v []string
	for _, opts := range batchVariants {
		res, err := core.SolveBatch(NewTSBatch(c, wants), opts)
		if err != nil {
			v = append(v, fmt.Sprintf("batch (workers=%d cache=%d) failed: %v", opts.Workers, opts.FwdCacheSize, err))
			continue
		}
		v = append(v, compareBatch(solo, res, opts)...)
	}
	return v
}

// checkEscBatch cross-checks SolveBatch against per-query Solve with one
// query per local, across the worker/cache grid.
func checkEscBatch(c EscCase) []string {
	solo := make([]core.Result, len(escLocals))
	for i, local := range escLocals {
		j := c.Job()
		j.Q.V = local
		solo[i], _ = core.Solve(j, core.Options{})
	}
	var v []string
	for _, opts := range batchVariants {
		res, err := core.SolveBatch(NewEscBatch(c, escLocals), opts)
		if err != nil {
			v = append(v, fmt.Sprintf("batch (workers=%d cache=%d) failed: %v", opts.Workers, opts.FwdCacheSize, err))
			continue
		}
		v = append(v, compareBatch(solo, res, opts)...)
	}
	return v
}

// checkNullBatch cross-checks SolveBatch against per-query Solve with one
// query per local, across the worker/cache grid.
func checkNullBatch(c NullCase) []string {
	solo := make([]core.Result, len(escLocals))
	for i, local := range escLocals {
		j := c.Job()
		j.Q.V = local
		solo[i], _ = core.Solve(j, core.Options{})
	}
	var v []string
	for _, opts := range batchVariants {
		res, err := core.SolveBatch(NewNullBatch(c, escLocals), opts)
		if err != nil {
			v = append(v, fmt.Sprintf("batch (workers=%d cache=%d) failed: %v", opts.Workers, opts.FwdCacheSize, err))
			continue
		}
		v = append(v, compareBatch(solo, res, opts)...)
	}
	return v
}

// compareBatch requires each batch query to resolve exactly like its solo
// solve: same verdict and same cost (the minimum abstraction itself is also
// unique-cost-deterministic, so compare it outright).
func compareBatch(solo []core.Result, batch *core.BatchResult, opts core.Options) []string {
	var v []string
	for q, want := range solo {
		got := batch.Results[q]
		if got.Status != want.Status || !got.Abstraction.Equal(want.Abstraction) {
			v = append(v, fmt.Sprintf("batch (workers=%d cache=%d) query %d resolved %s/%s, solo %s/%s",
				opts.Workers, opts.FwdCacheSize, q,
				got.Status, got.Abstraction, want.Status, want.Abstraction))
		}
	}
	return v
}
