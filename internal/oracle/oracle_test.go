package oracle

import (
	"testing"

	"tracer/internal/core"
	"tracer/internal/escape"
	"tracer/internal/lang"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

// figure1Job builds the paper's Fig 1(a) program with a query for the given
// state set — the published example the oracle self-checks against.
//
//	x = new File; y = x; if (*) z = x; x.open(); y.close(); check(x, σ)
func figure1Job(want ...string) *typestate.Job {
	prog := lang.SeqN(
		lang.Atoms(lang.Alloc{V: "x", H: "h"}),
		lang.Atoms(lang.Move{Dst: "y", Src: "x"}),
		lang.If(lang.Atoms(lang.Move{Dst: "z", Src: "x"})),
		lang.Atoms(lang.Invoke{V: "x", M: "open"}),
		lang.Atoms(lang.Invoke{V: "y", M: "close"}),
	)
	g := lang.BuildCFG(prog)
	a := typestate.New(typestate.FileProperty(), "h", typestate.CollectVars(g))
	var w uset.Bits
	for _, s := range want {
		w = w.Add(a.Prop.MustState(s))
	}
	return &typestate.Job{A: a, G: g, Q: typestate.Query{Nodes: []int{g.Exit}, Want: w}, K: 1}
}

// TestFigure1SelfCheck runs the brute-force oracle on Fig 1: the enumerated
// minimum for check1 must equal the published cost 2 ({x, y}), check2 must
// be impossible, and the full differential check must pass for both.
func TestFigure1SelfCheck(t *testing.T) {
	truth := Enumerate(figure1Job("closed"))
	if !truth.Possible() {
		t.Fatal("check1 enumerated as impossible; the paper proves it at cost 2")
	}
	if got := truth.MinCost(); got != 2 {
		t.Fatalf("check1 enumerated minimum cost = %d, published cost is 2", got)
	}
	if v := CheckSolve(func() core.Problem { return figure1Job("closed") }, core.Options{}); len(v) != 0 {
		t.Fatalf("check1 oracle violations: %v", v)
	}

	// The solver's witness must be the published {x, y} abstraction.
	res, err := core.Solve(figure1Job("closed"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := figure1Job("closed")
	got := map[string]bool{}
	for _, v := range res.Abstraction.Elems() {
		got[j.A.Vars.Value(v)] = true
	}
	if len(got) != 2 || !got["x"] || !got["y"] {
		t.Fatalf("cheapest abstraction = %v, want {x, y}", got)
	}

	if truth := Enumerate(figure1Job("opened")); truth.Possible() {
		t.Fatal("check2 enumerated as possible; the paper shows it is impossible")
	}
	if v := CheckSolve(func() core.Problem { return figure1Job("opened") }, core.Options{}); len(v) != 0 {
		t.Fatalf("check2 oracle violations: %v", v)
	}
}

// figure6Job builds the paper's Fig 6 program with the local(u) query.
//
//	u = new h1; v = new h2; v.f = u; pc: local(u)?
func figure6Job() *escape.Job {
	prog := lang.Atoms(
		lang.Alloc{V: "u", H: "h1"},
		lang.Alloc{V: "v", H: "h2"},
		lang.Store{Dst: "v", F: "f", Src: "u"},
	)
	g := lang.BuildCFG(prog)
	locals, fields, sites := escape.Universe(g)
	a := escape.New(locals, fields, sites)
	return &escape.Job{A: a, G: g, Q: escape.Query{Nodes: []int{g.Exit}, V: "u"}, K: 1}
}

// TestFigure6SelfCheck runs the oracle on Fig 6: the enumerated minimum must
// equal the published cost 2 ([h1↦L, h2↦L]) and the differential check must
// pass under both beam widths the paper discusses (k = 1 and k = 0).
func TestFigure6SelfCheck(t *testing.T) {
	truth := Enumerate(figure6Job())
	if !truth.Possible() {
		t.Fatal("Fig 6 enumerated as impossible; the paper proves it at cost 2")
	}
	if got := truth.MinCost(); got != 2 {
		t.Fatalf("Fig 6 enumerated minimum cost = %d, published cost is 2", got)
	}
	for _, k := range []int{1, 0} {
		if v := CheckSolve(func() core.Problem { j := figure6Job(); j.K = k; return j }, core.Options{}); len(v) != 0 {
			t.Fatalf("k=%d oracle violations: %v", k, v)
		}
	}

	res, err := core.Solve(figure6Job(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := figure6Job()
	want := uset.New(j.A.Sites.ID("h1")).Add(j.A.Sites.ID("h2"))
	if !res.Abstraction.Equal(want) {
		t.Fatalf("abstraction = %v, want {h1, h2}", res.Abstraction)
	}
}

// TestTruthHelpers pins the bitmask plumbing the whole oracle rests on.
func TestTruthHelpers(t *testing.T) {
	if p := setOf(0); !p.Empty() {
		t.Fatalf("setOf(0) = %v, want empty", p)
	}
	if p := setOf(0b101); !p.Equal(uset.New(0, 2)) {
		t.Fatalf("setOf(0b101) = %v, want {0, 2}", p)
	}
	for _, mask := range []int{0, 1, 0b110, 0b1011, 0b11111} {
		if got := maskOf(setOf(mask)); got != mask {
			t.Fatalf("maskOf(setOf(%#b)) = %#b", mask, got)
		}
	}
	tr := Truth{N: 2, Proves: []bool{false, false, true, true}}
	if !tr.Possible() || tr.MinCost() != 1 {
		t.Fatalf("Possible=%v MinCost=%d, want true/1", tr.Possible(), tr.MinCost())
	}
	if !tr.ProvesSet(uset.New(1)) || tr.ProvesSet(uset.New(0)) {
		t.Fatal("ProvesSet disagrees with the table")
	}
	none := Truth{N: 1, Proves: []bool{false, false}}
	if none.Possible() || none.MinCost() != -1 {
		t.Fatal("impossible truth must report Possible=false, MinCost=-1")
	}
}

// TestFuzzTypestateProperties is the tier-1 fixed-seed sweep of the three
// oracle properties for the type-state client. A 12 000-case run with the
// same generator found no discrepancies; this keeps a broad slice of that
// sweep in every CI run.
func TestFuzzTypestateProperties(t *testing.T) {
	if ds := FuzzTypestate(FuzzOptions{Seed: 1, N: 2000}); len(ds) != 0 {
		t.Fatalf("%d discrepancies, first:\n%s", len(ds), ds[0])
	}
}

// TestFuzzEscapeProperties is the escape-client twin of the sweep above.
func TestFuzzEscapeProperties(t *testing.T) {
	if ds := FuzzEscape(FuzzOptions{Seed: 1, N: 2000}); len(ds) != 0 {
		t.Fatalf("%d discrepancies, first:\n%s", len(ds), ds[0])
	}
}

// TestFuzzTypestateMetamorphic runs the metamorphic suite (permutation,
// padding, batch worker/cache invariance) on fixed-seed type-state cases.
func TestFuzzTypestateMetamorphic(t *testing.T) {
	if ds := FuzzTypestate(FuzzOptions{Seed: 42, N: 300, Meta: true}); len(ds) != 0 {
		t.Fatalf("%d discrepancies, first:\n%s", len(ds), ds[0])
	}
}

// TestFuzzEscapeMetamorphic is the escape-client metamorphic sweep.
func TestFuzzEscapeMetamorphic(t *testing.T) {
	if ds := FuzzEscape(FuzzOptions{Seed: 42, N: 300, Meta: true}); len(ds) != 0 {
		t.Fatalf("%d discrepancies, first:\n%s", len(ds), ds[0])
	}
}

// TestFuzzDeterministic: the same options must reproduce byte-identical
// reports — the property every replay instruction in a Discrepancy rests on.
func TestFuzzDeterministic(t *testing.T) {
	a := FuzzTypestate(FuzzOptions{Seed: 7, N: 50, Meta: true})
	b := FuzzTypestate(FuzzOptions{Seed: 7, N: 50, Meta: true})
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("report %d differs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}
