package lang

import "fmt"

// CFG is a control-flow graph over atomic commands. Edges carry either an
// atomic command or nil (an ε edge introduced by choice and iteration).
// Structured programs lower to CFGs via BuildCFG; the dataflow solver and
// the benchmark IR both consume this representation.
type CFG struct {
	Nodes int
	Entry int
	Exit  int
	Edges []Edge
	// Out[n] lists indices into Edges of the edges leaving n.
	Out [][]int
	// Label optionally names nodes (query points, source positions).
	Label map[int]string
}

// Edge is a CFG edge from From to To. A is nil for ε edges.
type Edge struct {
	From, To int
	A        Atom
}

// NewCFG returns an empty CFG with no nodes.
func NewCFG() *CFG {
	return &CFG{Label: make(map[int]string)}
}

// AddNode allocates a fresh node and returns its index.
func (g *CFG) AddNode() int {
	n := g.Nodes
	g.Nodes++
	g.Out = append(g.Out, nil)
	return n
}

// AddEdge adds an edge from → to labelled with a (nil for ε).
func (g *CFG) AddEdge(from, to int, a Atom) {
	if from < 0 || from >= g.Nodes || to < 0 || to >= g.Nodes {
		panic(fmt.Sprintf("lang: AddEdge(%d,%d) out of range [0,%d)", from, to, g.Nodes))
	}
	g.Edges = append(g.Edges, Edge{from, to, a})
	g.Out[from] = append(g.Out[from], len(g.Edges)-1)
}

// BuildCFG lowers a structured program to a CFG with a single entry and a
// single exit.
func BuildCFG(p Prog) *CFG {
	g := NewCFG()
	g.Entry = g.AddNode()
	g.Exit = lower(g, p, g.Entry)
	return g
}

// lower threads program p from node `from`, returning the node reached after
// executing p.
func lower(g *CFG, p Prog, from int) int {
	switch p := p.(type) {
	case Skip:
		return from
	case Atomic:
		to := g.AddNode()
		g.AddEdge(from, to, p.A)
		return to
	case Seq:
		mid := lower(g, p.Fst, from)
		return lower(g, p.Snd, mid)
	case Choice:
		lEnd := lower(g, p.Left, from)
		rEnd := lower(g, p.Right, from)
		join := g.AddNode()
		g.AddEdge(lEnd, join, nil)
		g.AddEdge(rEnd, join, nil)
		return join
	case Star:
		head := g.AddNode()
		g.AddEdge(from, head, nil)
		bodyEnd := lower(g, p.Body, head)
		g.AddEdge(bodyEnd, head, nil)
		return head
	}
	panic("lang: unknown program form")
}

// ReversePostorder returns the nodes reachable from Entry in reverse
// postorder, a good iteration order for forward dataflow.
func (g *CFG) ReversePostorder() []int {
	visited := make([]bool, g.Nodes)
	var order []int
	var dfs func(n int)
	dfs = func(n int) {
		visited[n] = true
		for _, ei := range g.Out[n] {
			e := g.Edges[ei]
			if !visited[e.To] {
				dfs(e.To)
			}
		}
		order = append(order, n)
	}
	dfs(g.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
