package lang

import "strings"

// Prog is a program of the structured regular language:
// s ::= a | s ; s' | s + s' | s*.
type Prog interface {
	prog()
	String() string
}

// Atomic wraps a single atomic command as a program.
type Atomic struct{ A Atom }

// Seq is sequential composition s ; s'.
type Seq struct{ Fst, Snd Prog }

// Choice is nondeterministic choice s + s'.
type Choice struct{ Left, Right Prog }

// Star is iteration s*.
type Star struct{ Body Prog }

// Skip is the empty program ε; it is convenient for encoding one-armed
// conditionals (s + ε).
type Skip struct{}

func (Atomic) prog() {}
func (Seq) prog()    {}
func (Choice) prog() {}
func (Star) prog()   {}
func (Skip) prog()   {}

func (p Atomic) String() string { return p.A.String() }
func (p Seq) String() string    { return p.Fst.String() + "; " + p.Snd.String() }
func (p Choice) String() string { return "(" + p.Left.String() + " + " + p.Right.String() + ")" }
func (p Star) String() string   { return "(" + p.Body.String() + ")*" }
func (Skip) String() string     { return "skip" }

// SeqN sequences the given programs left to right. SeqN() is Skip.
func SeqN(ps ...Prog) Prog {
	if len(ps) == 0 {
		return Skip{}
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Seq{out, p}
	}
	return out
}

// Atoms builds a straight-line program from atomic commands.
func Atoms(as ...Atom) Prog {
	ps := make([]Prog, len(as))
	for i, a := range as {
		ps[i] = Atomic{a}
	}
	return SeqN(ps...)
}

// If is the one-armed conditional "if (*) s", i.e. s + ε.
func If(s Prog) Prog { return Choice{s, Skip{}} }

// Traces enumerates traces of p per Fig 2, in breadth-first order, stopping
// once limit traces have been produced or every trace would exceed maxLen
// atoms. It is intended for tests and small examples; programs with loops
// have infinitely many traces.
func Traces(p Prog, maxLen, limit int) []Trace {
	var out []Trace
	seen := make(map[string]bool)
	emit := func(t Trace) bool {
		k := t.String()
		if seen[k] {
			return len(out) < limit
		}
		seen[k] = true
		out = append(out, t)
		return len(out) < limit
	}
	// Iterative deepening on the number of loop unrollings keeps the
	// enumeration breadth-first-ish without an explicit queue.
	for unroll := 0; ; unroll++ {
		before := len(out)
		if !emitTraces(p, nil, maxLen, unroll, emit) {
			break
		}
		if len(out) == before && unroll > maxLen {
			break
		}
		if !hasStar(p) {
			break
		}
	}
	return out
}

// emitTraces walks p accumulating the prefix; it reports false when the
// limit has been reached and enumeration should stop.
func emitTraces(p Prog, prefix Trace, maxLen, unroll int, emit func(Trace) bool) bool {
	type frame struct {
		prefix Trace
	}
	var rec func(p Prog, prefix Trace, k func(Trace) bool) bool
	rec = func(p Prog, prefix Trace, k func(Trace) bool) bool {
		if len(prefix) > maxLen {
			return true
		}
		switch p := p.(type) {
		case Skip:
			return k(prefix)
		case Atomic:
			next := make(Trace, len(prefix)+1)
			copy(next, prefix)
			next[len(prefix)] = p.A
			return k(next)
		case Seq:
			return rec(p.Fst, prefix, func(t Trace) bool {
				return rec(p.Snd, t, k)
			})
		case Choice:
			if !rec(p.Left, prefix, k) {
				return false
			}
			return rec(p.Right, prefix, k)
		case Star:
			// Unroll the body 0..unroll times.
			var loop func(t Trace, n int) bool
			loop = func(t Trace, n int) bool {
				if !k(t) {
					return false
				}
				if n == 0 {
					return true
				}
				return rec(p.Body, t, func(t2 Trace) bool {
					if len(t2) == len(t) {
						return true // empty body iteration; avoid divergence
					}
					return loop(t2, n-1)
				})
			}
			return loop(prefix, unroll)
		}
		panic("lang: unknown program form")
	}
	_ = frame{}
	return rec(p, prefix, emit)
}

func hasStar(p Prog) bool {
	switch p := p.(type) {
	case Star:
		return true
	case Seq:
		return hasStar(p.Fst) || hasStar(p.Snd)
	case Choice:
		return hasStar(p.Left) || hasStar(p.Right)
	default:
		return false
	}
}

// Format renders a program with one atom per line, for example output.
func Format(p Prog) string {
	var b strings.Builder
	var rec func(p Prog, indent string)
	rec = func(p Prog, indent string) {
		switch p := p.(type) {
		case Skip:
		case Atomic:
			b.WriteString(indent + p.A.String() + ";\n")
		case Seq:
			rec(p.Fst, indent)
			rec(p.Snd, indent)
		case Choice:
			b.WriteString(indent + "if (*) {\n")
			rec(p.Left, indent+"  ")
			b.WriteString(indent + "} else {\n")
			rec(p.Right, indent+"  ")
			b.WriteString(indent + "}\n")
		case Star:
			b.WriteString(indent + "loop {\n")
			rec(p.Body, indent+"  ")
			b.WriteString(indent + "}\n")
		}
	}
	rec(p, "")
	return b.String()
}
