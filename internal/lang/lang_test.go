package lang

import (
	"math/rand"
	"strings"
	"testing"
)

func atomA() Atom { return MoveNull{V: "a"} }
func atomB() Atom { return MoveNull{V: "b"} }
func atomC() Atom { return MoveNull{V: "c"} }

// TestTracesStraightLine: a;b;c has exactly one trace.
func TestTracesStraightLine(t *testing.T) {
	p := Atoms(atomA(), atomB(), atomC())
	ts := Traces(p, 10, 100)
	if len(ts) != 1 {
		t.Fatalf("traces = %d, want 1", len(ts))
	}
	if ts[0].String() != "a = null; b = null; c = null" {
		t.Fatalf("trace = %q", ts[0])
	}
}

// TestTracesChoice: a + b has two traces.
func TestTracesChoice(t *testing.T) {
	p := Choice{Atoms(atomA()), Atoms(atomB())}
	ts := Traces(p, 10, 100)
	if len(ts) != 2 {
		t.Fatalf("traces = %v, want 2", ts)
	}
}

// TestTracesStar: a* yields ε, a, aa, aaa, ... up to the length bound.
func TestTracesStar(t *testing.T) {
	p := Star{Atoms(atomA())}
	ts := Traces(p, 4, 100)
	lens := map[int]bool{}
	for _, tr := range ts {
		lens[len(tr)] = true
	}
	for want := 0; want <= 4; want++ {
		if !lens[want] {
			t.Errorf("missing trace of length %d in %v", want, ts)
		}
	}
}

// TestTracesLimit stops at the requested number of traces.
func TestTracesLimit(t *testing.T) {
	p := Star{Atoms(atomA())}
	ts := Traces(p, 100, 5)
	if len(ts) != 5 {
		t.Fatalf("traces = %d, want 5", len(ts))
	}
}

// TestSkipAndHelpers: Skip is the unit of SeqN and If.
func TestSkipAndHelpers(t *testing.T) {
	if got := Traces(Skip{}, 5, 10); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("Skip traces = %v", got)
	}
	ifp := If(Atoms(atomA()))
	ts := Traces(ifp, 5, 10)
	if len(ts) != 2 {
		t.Fatalf("If traces = %v", ts)
	}
	if SeqN().String() != "skip" {
		t.Fatalf("SeqN() = %q", SeqN().String())
	}
}

// randProg builds a random structured program with the given atom pool.
func randProg(rng *rand.Rand, depth int) Prog {
	atoms := []Atom{
		Alloc{V: "x", H: "h"}, Move{Dst: "x", Src: "y"}, MoveNull{V: "y"},
		Invoke{V: "x", M: "m"}, Store{Dst: "x", F: "f", Src: "y"},
	}
	if depth == 0 || rng.Intn(3) == 0 {
		return Atomic{atoms[rng.Intn(len(atoms))]}
	}
	switch rng.Intn(4) {
	case 0:
		return Seq{randProg(rng, depth-1), randProg(rng, depth-1)}
	case 1:
		return Choice{randProg(rng, depth-1), randProg(rng, depth-1)}
	case 2:
		return Star{randProg(rng, depth-1)}
	default:
		return Atomic{atoms[rng.Intn(len(atoms))]}
	}
}

// TestCFGTraceCorrespondence: every enumerated trace of a program is a path
// through its lowered CFG from entry to exit.
func TestCFGTraceCorrespondence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		p := randProg(rng, 3)
		g := BuildCFG(p)
		for _, tr := range Traces(p, 6, 30) {
			if !cfgAccepts(g, tr) {
				t.Fatalf("CFG of %s rejects trace %q", p, tr)
			}
		}
	}
}

// cfgAccepts reports whether the CFG has a path spelling the trace from
// Entry to Exit (ε edges free).
func cfgAccepts(g *CFG, tr Trace) bool {
	type state struct {
		node int
		pos  int
	}
	seen := map[state]bool{}
	var stack []state
	push := func(s state) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	push(state{g.Entry, 0})
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.node == g.Exit && s.pos == len(tr) {
			return true
		}
		for _, ei := range g.Out[s.node] {
			e := g.Edges[ei]
			if e.A == nil {
				push(state{e.To, s.pos})
			} else if s.pos < len(tr) && e.A.String() == tr[s.pos].String() {
				push(state{e.To, s.pos + 1})
			}
		}
	}
	return false
}

// TestReversePostorder: entry first, and every node reachable appears once.
func TestReversePostorder(t *testing.T) {
	p := Seq{Choice{Atoms(atomA()), Atoms(atomB())}, Star{Atoms(atomC())}}
	g := BuildCFG(p)
	order := g.ReversePostorder()
	if order[0] != g.Entry {
		t.Fatalf("rpo starts at %d, want entry %d", order[0], g.Entry)
	}
	seen := map[int]bool{}
	for _, n := range order {
		if seen[n] {
			t.Fatalf("node %d repeated", n)
		}
		seen[n] = true
	}
	if !seen[g.Exit] {
		t.Fatal("exit unreachable in rpo")
	}
}

// TestAtomStrings covers the printable forms used in traces and examples.
func TestAtomStrings(t *testing.T) {
	cases := map[Atom]string{
		Alloc{V: "v", H: "h1"}:            "v = new h1",
		Move{Dst: "a", Src: "b"}:          "a = b",
		MoveNull{V: "v"}:                  "v = null",
		GlobalWrite{G: "G", V: "v"}:       "G = v",
		GlobalRead{V: "v", G: "G"}:        "v = G",
		Load{Dst: "a", Src: "b", F: "f"}:  "a = b.f",
		Store{Dst: "a", F: "f", Src: "b"}: "a.f = b",
		Invoke{V: "v", M: "close"}:        "v.close()",
	}
	for atom, want := range cases {
		if got := atom.String(); got != want {
			t.Errorf("%T.String() = %q, want %q", atom, got, want)
		}
	}
}

// TestFormat renders nested structure with branches and loops.
func TestFormat(t *testing.T) {
	p := SeqN(
		Atoms(Alloc{V: "x", H: "h"}),
		If(Atoms(Move{Dst: "z", Src: "x"})),
		Star{Atoms(Invoke{V: "x", M: "m"})},
	)
	s := Format(p)
	for _, want := range []string{"x = new h;", "if (*)", "else", "loop {", "x.m();"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format output missing %q:\n%s", want, s)
		}
	}
}

// TestAddEdgePanics on out-of-range nodes.
func TestAddEdgePanics(t *testing.T) {
	g := NewCFG()
	g.AddNode()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddEdge(0, 5, nil)
}
