// Package lang defines the simple imperative language of §3.1 of the paper:
//
//	(atomic command) a ::= ...
//	(program)        s ::= a | s ; s' | s + s' | s*
//
// The set of atomic commands is the union of the heap-manipulating commands
// interpreted by the two client analyses (Figs 4 and 5): allocations, copies,
// null assignments, global reads/writes, field loads/stores, and method
// invocations. A trace is a finite sequence of atomic commands (Fig 2).
package lang

import "fmt"

// Atom is an atomic command. Analyses interpret the subset of atoms they
// care about and treat the rest according to their concrete semantics
// (typically as identity or as a conservative kill).
type Atom interface {
	fmt.Stringer
	atom()
}

// Alloc is "v = new h": bind local v to a fresh object from allocation
// site h.
type Alloc struct {
	V string // destination local
	H string // allocation site
}

// Move is "v = w": copy local w into local v.
type Move struct {
	Dst, Src string
}

// MoveNull is "v = null".
type MoveNull struct {
	V string
}

// GlobalWrite is "g = v": store local v into global (static) variable g.
type GlobalWrite struct {
	G, V string
}

// GlobalRead is "v = g": load global g into local v.
type GlobalRead struct {
	V, G string
}

// Load is "v = w.f": load instance field f of the object w points to.
type Load struct {
	Dst, Src, F string
}

// Store is "v.f = w": store local w into field f of the object v points to.
type Store struct {
	Dst, F, Src string
}

// Invoke is "v.m()": call method m on the object v points to. For the
// type-state analysis this drives the type-state automaton; the thread-escape
// analysis ignores it (interprocedural effects are handled by the RHS solver,
// which splices callee atoms into the trace).
type Invoke struct {
	V, M string
}

func (Alloc) atom()       {}
func (Move) atom()        {}
func (MoveNull) atom()    {}
func (GlobalWrite) atom() {}
func (GlobalRead) atom()  {}
func (Load) atom()        {}
func (Store) atom()       {}
func (Invoke) atom()      {}

func (a Alloc) String() string       { return a.V + " = new " + a.H }
func (a Move) String() string        { return a.Dst + " = " + a.Src }
func (a MoveNull) String() string    { return a.V + " = null" }
func (a GlobalWrite) String() string { return a.G + " = " + a.V }
func (a GlobalRead) String() string  { return a.V + " = " + a.G }
func (a Load) String() string        { return a.Dst + " = " + a.Src + "." + a.F }
func (a Store) String() string       { return a.Dst + "." + a.F + " = " + a.Src }
func (a Invoke) String() string      { return a.V + "." + a.M + "()" }

// Trace is a finite sequence of atomic commands recording one execution.
type Trace []Atom

func (t Trace) String() string {
	s := ""
	for i, a := range t {
		if i > 0 {
			s += "; "
		}
		s += a.String()
	}
	return s
}
