// Protocol example: the full front-end pipeline on an interprocedural
// program written in the textual mini-IR — the workflow a downstream user
// of the library would follow.
//
// The program models a small server: connections are taken from a pool,
// filled with buffers, and registered in a global registry on some paths.
// A File object is opened and closed through a helper. The example parses
// the program, runs the 0-CFA points-to analysis, lowers it by inlining,
// and answers its explicit queries with TRACER:
//
//   - qFile: a File-protocol type-state query (provable — the cheapest
//     abstraction tracks the variables that carry the file between frames);
//   - qPriv: a thread-escape query on a connection that never escapes
//     (provable with a small number of L-mapped sites);
//   - qBuf:  a thread-escape query on a buffer that escapes *transitively*:
//     it is attached to a connection that is published to the registry, so
//     no abstraction can prove it thread-local (impossible);
//   - qLeak: a thread-escape query on the published connection itself
//     (impossible for every abstraction).
package main

import (
	"fmt"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/typestate"
)

const src = `
global registry

class File {
  native method open(this)
  native method close(this)
}

class Logger {
  field sink
  method log(this, f) {
    f.close()
    return f
  }
}

class Conn {
  field buf
  method attach(this, b) {
    this.buf = b
  }
  method publish(this) {
    if * {
      registry = this
    }
  }
}

class Main {
  method main(this) {
    var f, lg, c, b, f2
    f = new File @ hFile
    f.open()
    lg = new Logger @ hLogger
    f2 = lg.log(f)
    query qFile state(f2: closed)

    c = new Conn @ hConn
    b = new Conn @ hBuf
    c.attach(b)
    c.publish()
    query qLeak local(c)
    query qBuf local(b)

    var d, b2
    d = new Conn @ hPriv
    b2 = new Conn @ hBuf2
    d.attach(b2)
    query qPriv local(d)
  }
}
`

func main() {
	prog, err := driver.Load(src)
	if err != nil {
		panic(err)
	}
	stats := prog.ComputeStats(src)
	fmt.Printf("Loaded program: %d classes, %d methods, %d lowered atoms\n",
		stats.TotalClasses, stats.TotalMethods, stats.TotalAtoms)
	fmt.Printf("Abstraction families: 2^%d (type-state, variables), 2^%d (thread-escape, sites)\n\n",
		stats.TypestateParams, stats.EscapeParams)

	opts := core.Options{Timeout: 10 * time.Second}

	tsJobs, err := prog.ExplicitTypestateJobs(typestate.FileProperty(), 5)
	if err != nil {
		panic(err)
	}
	for name, job := range tsJobs {
		res, err := core.Solve(job, opts)
		if err != nil {
			panic(err)
		}
		report(name, res, job.ParamName)
	}
	for name, job := range prog.ExplicitEscapeJobs(5) {
		res, err := core.Solve(job, opts)
		if err != nil {
			panic(err)
		}
		report(name, res, job.ParamName)
	}
}

func report(name string, res core.Result, paramName func(int) string) {
	switch res.Status {
	case core.Proved:
		var params []string
		for _, i := range res.Abstraction.Elems() {
			params = append(params, paramName(i))
		}
		fmt.Printf("%-14s PROVED in %d iterations; cheapest abstraction (|p|=%d): %v\n",
			name, res.Iterations, res.Abstraction.Len(), params)
	case core.Impossible:
		fmt.Printf("%-14s IMPOSSIBLE in %d iterations: no abstraction in the family proves it\n",
			name, res.Iterations)
	default:
		fmt.Printf("%-14s UNRESOLVED after %d iterations\n", name, res.Iterations)
	}
}
