// Quickstart: the paper's §2 worked example (Fig 1), executed live.
//
// The program manipulates a File object with an open/close protocol:
//
//	x = new File; y = x; if (*) z = x; x.open(); y.close();
//	if (*) check1(x, closed) else check2(x, opened)
//
// TRACER proves check1 with the cheapest abstraction {x, y} in three
// iterations and shows check2 impossible for every abstraction in two.
// Each iteration prints the abstract counterexample trace with the forward
// states (α) and the backward meta-analysis conditions (ψ), matching the
// annotations of Fig 1(c)–(e).
package main

import (
	"fmt"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/typestate"
	"tracer/internal/uset"
)

func main() {
	prog := lang.SeqN(
		lang.Atoms(lang.Alloc{V: "x", H: "h"}),
		lang.Atoms(lang.Move{Dst: "y", Src: "x"}),
		lang.If(lang.Atoms(lang.Move{Dst: "z", Src: "x"})),
		lang.Atoms(lang.Invoke{V: "x", M: "open"}),
		lang.Atoms(lang.Invoke{V: "y", M: "close"}),
	)
	fmt.Println("Program (Fig 1a):")
	fmt.Print(indent(lang.Format(prog)))
	g := lang.BuildCFG(prog)
	a := typestate.New(typestate.FileProperty(), "h", typestate.CollectVars(g))

	closed := uset.Bits(0).Add(a.Prop.MustState("closed"))
	opened := uset.Bits(0).Add(a.Prop.MustState("opened"))

	solve(a, g, "check1(x, closed)", closed)
	solve(a, g, "check2(x, opened)", opened)
}

// solve runs TRACER verbosely for one query.
func solve(a *typestate.Analysis, g *lang.CFG, name string, want uset.Bits) {
	fmt.Printf("\n=== query %s ===\n", name)
	job := &typestate.Job{A: a, G: g, Q: typestate.Query{Nodes: []int{g.Exit}, Want: want}, K: 1}

	// Wrap the job so each TRACER iteration prints Fig 1's annotations.
	iter := 0
	problem := &verboseProblem{job: job, a: a, iter: &iter}
	res, err := core.Solve(problem, core.Options{})
	if err != nil {
		panic(err)
	}
	switch res.Status {
	case core.Proved:
		names := []string{}
		for _, v := range res.Abstraction.Elems() {
			names = append(names, a.Vars.Value(v))
		}
		fmt.Printf("PROVED with cheapest abstraction p = %v after %d iterations\n", names, res.Iterations)
	case core.Impossible:
		fmt.Printf("IMPOSSIBLE: no abstraction proves it (%d iterations)\n", res.Iterations)
	default:
		fmt.Printf("unresolved after %d iterations\n", res.Iterations)
	}
}

// verboseProblem wraps a type-state job, printing what Fig 1 shows: the
// trace annotated with forward states and meta-analysis formulas.
type verboseProblem struct {
	job  *typestate.Job
	a    *typestate.Analysis
	iter *int
}

func (v *verboseProblem) NumParams() int { return v.job.NumParams() }

func (v *verboseProblem) Forward(b *budget.Budget, p uset.Set) core.Outcome {
	*v.iter++
	names := []string{}
	for _, x := range p.Elems() {
		names = append(names, v.a.Vars.Value(x))
	}
	fmt.Printf("\niteration %d: running forward analysis with p = %v\n", *v.iter, names)
	out := v.job.Forward(b, p)
	if out.Proved {
		fmt.Println("  query proven")
	}
	return out
}

func (v *verboseProblem) Backward(_ *budget.Budget, p uset.Set, t lang.Trace) []core.ParamCube {
	dI := v.a.Initial()
	states := dataflow.StatesAlong(t, dI, v.a.Transfer(p))
	ann := meta.RunAnnotated(v.job.Client(p), t, states, v.a.NotQ(v.job.Q))
	fmt.Println("  counterexample trace (α = forward state, ψ = failure condition):")
	fmt.Printf("    %-24s α %-28s ψ %s\n", "", v.a.Format(states[0]), ann[0])
	for i, atom := range t {
		fmt.Printf("    %-24s α %-28s ψ %s\n", atom.String()+";", v.a.Format(states[i+1]), ann[i+1])
	}
	cubes := v.job.Cubes(ann[0], dI)
	for _, c := range cubes {
		fmt.Printf("  eliminated abstractions: %s\n", describeCube(v.a, c))
	}
	return cubes
}

func describeCube(a *typestate.Analysis, c core.ParamCube) string {
	out := "every p"
	for _, x := range c.Pos.Elems() {
		out += fmt.Sprintf(" with %s∈p", a.Vars.Value(x))
	}
	for _, x := range c.Neg.Elems() {
		out += fmt.Sprintf(" with %s∉p", a.Vars.Value(x))
	}
	return out
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
