// Recursion example: the summary-based RHS tabulation backend.
//
// The paper implements its forward analyses "as an instance of the RHS
// tabulation framework" (§6). This repository offers two interprocedural
// backends: context-sensitive inlining (fast, acyclic call graphs only) and
// a summary-based tabulation solver that handles recursion by computing
// procedure summaries as fixpoints. Both feed the same backward
// meta-analysis — counterexample traces are flat sequences of atomic
// commands either way, with callee traces spliced at call sites.
//
// The program below builds a linked list through recursion. The inlining
// pipeline rejects it; the tabulation pipeline resolves all three queries.
package main

import (
	"fmt"
	"sort"
	"time"

	"tracer/internal/core"
	"tracer/internal/driver"
	"tracer/internal/typestate"
)

const src = `
global registry

class Node {
  field next
  method grow(this, n) {
    var child, out
    out = this
    if * {
      child = new Node @ hChild
      this.next = child
      out = child.grow(n)
    }
    return out
  }
  method publish(this) {
    if * {
      registry = this
    }
  }
}

class File {
  native method open(this)
  native method close(this)
}

class Main {
  method main(this) {
    var root, tail, f, priv
    root = new Node @ hRoot
    tail = root.grow(root)
    root.publish()

    f = new File @ hFile
    f.open()
    f.close()

    priv = new Node @ hPriv

    query qFile state(f: closed)
    query qRoot local(root)
    query qPriv local(priv)
  }
}
`

func main() {
	// The inlining pipeline cannot handle the recursive call graph:
	if _, err := driver.Load(src); err != nil {
		fmt.Printf("inlining pipeline: %v\n", err)
	}

	p, err := driver.LoadRHS(src)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tabulation pipeline: %d methods lowered, %d supergraph atoms\n\n",
		len(p.SP.G.Methods), p.SP.G.Atoms())

	jobs, err := p.ExplicitJobs(typestate.FileProperty(), 5)
	if err != nil {
		panic(err)
	}
	names := make([]string, 0, len(jobs))
	for name := range jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res, err := core.Solve(jobs[name], core.Options{Timeout: 10 * time.Second})
		if err != nil {
			panic(err)
		}
		switch res.Status {
		case core.Proved:
			fmt.Printf("%-14s PROVED in %d iterations (|p| = %d)\n", name, res.Iterations, res.Abstraction.Len())
		case core.Impossible:
			fmt.Printf("%-14s IMPOSSIBLE in %d iterations\n", name, res.Iterations)
		default:
			fmt.Printf("%-14s UNRESOLVED after %d iterations\n", name, res.Iterations)
		}
	}
}
