// Thread-escape example: the paper's Fig 6, with and without the
// under-approximation operator of §4.1.
//
// The program stores a fresh object into a field of another fresh object
// and asks whether the first is thread-local:
//
//	u = new h1; v = new h2; v.f = u; pc: local(u)?
//
// Without under-approximation (k = 0), a single backward pass computes the
// complete failure condition h1.E ∨ (h1.L ∧ h2.E). With aggressive
// under-approximation (k = 1), the conditions are much smaller (h1.E, then
// h1.L ∧ h2.E) at the cost of one extra CEGAR iteration — the trade-off
// Fig 6 illustrates. Both reach the same cheapest abstraction [h1↦L, h2↦L].
package main

import (
	"fmt"

	"tracer/internal/budget"
	"tracer/internal/core"
	"tracer/internal/dataflow"
	"tracer/internal/escape"
	"tracer/internal/lang"
	"tracer/internal/meta"
	"tracer/internal/uset"
)

func main() {
	prog := lang.Atoms(
		lang.Alloc{V: "u", H: "h1"},
		lang.Alloc{V: "v", H: "h2"},
		lang.Store{Dst: "v", F: "f", Src: "u"},
	)
	fmt.Println("Program (Fig 6):")
	fmt.Print(lang.Format(prog))
	fmt.Println("pc: local(u)?")

	g := lang.BuildCFG(prog)
	locals, fields, sites := escape.Universe(g)
	a := escape.New(locals, fields, sites)
	q := escape.Query{Nodes: []int{g.Exit}, V: "u"}

	for _, k := range []int{0, 1} {
		label := fmt.Sprintf("k = %d", k)
		if k == 0 {
			label = "no under-approximation (Fig 6a)"
		} else {
			label = "k = 1 (Fig 6b)"
		}
		fmt.Printf("\n=== %s ===\n", label)
		job := &escape.Job{A: a, G: g, Q: q, K: k}
		iter := 0
		problem := &verbose{job: job, a: a, iter: &iter}
		res, err := core.Solve(problem, core.Options{})
		if err != nil {
			panic(err)
		}
		if res.Status != core.Proved {
			fmt.Printf("unexpected status %v\n", res.Status)
			continue
		}
		names := []string{}
		for _, h := range res.Abstraction.Elems() {
			names = append(names, a.Sites.Value(h)+"↦L")
		}
		fmt.Printf("PROVED with cheapest abstraction %v after %d iterations\n", names, res.Iterations)
	}
}

// verbose wraps the job to print the α/ψ annotations of Fig 6.
type verbose struct {
	job  *escape.Job
	a    *escape.Analysis
	iter *int
}

func (v *verbose) NumParams() int { return v.job.NumParams() }

func (v *verbose) Forward(b *budget.Budget, p uset.Set) core.Outcome {
	*v.iter++
	mapped := []string{}
	for i := 0; i < v.a.Sites.Len(); i++ {
		o := "E"
		if p.Has(i) {
			o = "L"
		}
		mapped = append(mapped, fmt.Sprintf("%s↦%s", v.a.Sites.Value(i), o))
	}
	fmt.Printf("\niteration %d: forward analysis with p = %v\n", *v.iter, mapped)
	out := v.job.Forward(b, p)
	if out.Proved {
		fmt.Println("  query proven")
	}
	return out
}

func (v *verbose) Backward(_ *budget.Budget, p uset.Set, t lang.Trace) []core.ParamCube {
	dI := v.a.Initial()
	states := dataflow.StatesAlong(t, dI, v.a.Transfer(p))
	ann := meta.RunAnnotated(v.job.Client(p), t, states, v.a.NotQ(v.job.Q))
	fmt.Println("  counterexample trace (α = forward state, ψ = failure condition):")
	fmt.Printf("    %-16s α %-24s ψ %s\n", "", v.a.Format(states[0]), ann[0])
	for i, atom := range t {
		fmt.Printf("    %-16s α %-24s ψ %s\n", atom.String()+";", v.a.Format(states[i+1]), ann[i+1])
	}
	cubes := v.job.Cubes(ann[0], dI)
	for _, c := range cubes {
		fmt.Printf("  eliminated: %s\n", describe(v.a, c))
	}
	return cubes
}

func describe(a *escape.Analysis, c core.ParamCube) string {
	out := "every p"
	for _, h := range c.Pos.Elems() {
		out += fmt.Sprintf(" with %s↦L", a.Sites.Value(h))
	}
	for _, h := range c.Neg.Elems() {
		out += fmt.Sprintf(" with %s↦E", a.Sites.Value(h))
	}
	return out
}
