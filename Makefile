# Tier-1 gate: everything a PR must keep green (see ROADMAP.md).
.PHONY: check fmt vet build test bench

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Scaled-down run of every table/figure benchmark plus micro-benchmarks.
bench:
	go test -bench=. -benchmem -run xxx .
