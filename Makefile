# Tier-1 gate: everything a PR must keep green (see ROADMAP.md).
.PHONY: check fmt vet build test bench bench-micro bench-json bench-delta \
	bench-history chaos fuzz smoke-server chaos-server

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Fault-injection suite: the deterministic chaos tests (panic isolation,
# budget trips, worker-count determinism, and the seeded sweep) under -race,
# plus a seeded chaos run of the tracer CLI on a real program.
chaos:
	go test -race -count=1 -run 'Chaos|PanicIsolation|DeadlineMidPhase|PartialStats' \
		./internal/core/ -v
	go test -race -count=1 ./internal/faultinject/ ./internal/budget/ -v
	go run ./cmd/benchgen -dir /tmp -name tsp
	go run ./cmd/tracer -chaos-seed 7 -chaos-rate 0.2 -auto -batch -batch-workers 4 /tmp/tsp.tir

# Differential fuzzing: the oracle package's fixed-seed property and
# metamorphic suites under -race, then a seeded CLI sweep of the brute-force
# oracle on every client ("Ground truth & fuzzing" in ARCHITECTURE.md).
# Override for longer hunts, e.g.:  make fuzz FUZZ_SEED=900000 FUZZ_N=100000
FUZZ_SEED ?= 1
FUZZ_N    ?= 5000
fuzz:
	go test -race -count=1 ./internal/oracle/... -v
	DECODER_FUZZ_N=$(FUZZ_N) go test -race -count=1 \
		-run 'TestDecoderSeededFuzz|FuzzDecodeRequest' ./internal/server/ -v
	go run ./cmd/tracer -fuzz-seed $(FUZZ_SEED) -fuzz-n $(FUZZ_N) -fuzz-meta

# Daemon smoke: boot tracerd on an ephemeral port, replay a small corpus via
# traceload with verdict verification (100% success required), SIGTERM, and
# require a clean graceful drain.
smoke-server:
	scripts/server_smoke.sh

# Daemon chaos soak: traceload at high concurrency against tracerd under
# seeded fault injection — zero process deaths, zero wrong verdicts, only
# failed/exhausted/429/503 degradation, clean drain.
chaos-server:
	scripts/chaos_server.sh

# Scaled-down run of every table/figure benchmark plus micro-benchmarks.
bench:
	go test -bench=. -benchmem -run xxx .

# Perf-kernel microbenchmarks with allocs/op — the regression gate for the
# interned DNF kernel's hot paths (Approx, WpDNF, Simplify) and the
# incremental minimum-model solver's warm/fresh resolve loop.
bench-micro:
	go test -run=NONE -bench 'Approx|WpDNF|Simplify' -benchmem ./internal/formula/...
	go test -run=NONE -bench 'MinimumIncremental' -benchmem ./internal/minsat/...

# Regenerate the checked-in perf-trajectory series (github-action-benchmark
# shape). Scaled-down budget so it finishes in a couple of minutes.
bench-json:
	go run ./cmd/paperbench -iters 100 -timeout 1s -bench-json BENCH_paperbench.json

# Perf gate (also a CI job): re-measure with the bench-json budget and fail
# when a gated experiment wall regressed beyond its per-experiment threshold
# (see scripts/bench_delta.sh for the thresholds).
bench-delta:
	scripts/bench_delta.sh

# Append the current BENCH_paperbench.json to the committed perf-trajectory
# ledger (BENCH_HISTORY.json) and rewrite the trend table in EXPERIMENTS.md.
# Idempotent per commit; CI verifies the ledger stays in sync via
# `benchhistory -verify`.
bench-history:
	go run ./cmd/benchhistory
