# Tier-1 gate: everything a PR must keep green (see ROADMAP.md).
.PHONY: check fmt vet build test bench bench-json

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Scaled-down run of every table/figure benchmark plus micro-benchmarks.
bench:
	go test -bench=. -benchmem -run xxx .

# Regenerate the checked-in perf-trajectory series (github-action-benchmark
# shape). Scaled-down budget so it finishes in a couple of minutes.
bench-json:
	go run ./cmd/paperbench -iters 100 -timeout 1s -bench-json BENCH_paperbench.json
