#!/bin/sh
# Daemon chaos gate: run traceload at high concurrency against tracerd with
# seeded fault injection firing at the server's request/batch/drain sites and
# inside the solver itself. Acceptance: the daemon process never dies, no
# verdict is ever wrong (traceload -verify), every degraded outcome is one of
# failed/exhausted/429/503, and SIGTERM still drains to a clean exit 0.
#
# Usage: scripts/chaos_server.sh [requests] [concurrency] [seed]
set -e
cd "$(dirname "$0")/.."

n=${1:-200}
conc=${2:-50}
seed=${3:-7}
bin=$(mktemp -d /tmp/tracerd_chaos.XXXXXX)
log="$bin/tracerd.log"
trap 'kill "$pid" 2>/dev/null; rm -rf "$bin"' EXIT

go build -o "$bin/tracerd" ./cmd/tracerd
go build -o "$bin/traceload" ./cmd/traceload

"$bin/tracerd" -addr 127.0.0.1:0 -chaos-seed "$seed" -chaos-rate 0.05 \
	-queue-limit 64 -workers 2 > "$log" 2>&1 &
pid=$!

addr=""
for i in $(seq 1 100); do
	addr=$(sed -n 's/^tracerd: listening on //p' "$log")
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || { echo "tracerd died at startup:"; cat "$log"; exit 1; }
	sleep 0.1
done
[ -n "$addr" ] || { echo "tracerd never reported its address"; cat "$log"; exit 1; }

# -verify fails on any wrong proved/impossible verdict; shed (429/503) and
# degraded (failed/exhausted) outcomes are acceptable chaos fallout, so no
# -require-success. Transport failures would mean the daemon died mid-flight
# and fail the run.
"$bin/traceload" -addr "$addr" -bench tsp -client typestate \
	-n "$n" -concurrency "$conc" -seed "$seed" -verify

kill -0 "$pid" 2>/dev/null || {
	echo "tracerd died during the chaos soak:"; cat "$log"; exit 1; }

kill -TERM "$pid"
deadline=$(( $(date +%s) + 60 ))
while kill -0 "$pid" 2>/dev/null; do
	if [ "$(date +%s)" -ge "$deadline" ]; then
		echo "tracerd did not drain within 60s"; cat "$log"; exit 1
	fi
	sleep 0.2
done
set +e
wait "$pid" 2>/dev/null
status=$?
set -e
if [ "$status" -ne 0 ]; then
	echo "tracerd exited $status after SIGTERM under chaos:"; cat "$log"; exit 1
fi
echo "chaos_server: OK ($n requests at concurrency $conc, seed $seed, clean drain)"
