#!/bin/sh
# Daemon smoke gate: boot tracerd on an ephemeral port, replay a small
# corpus through traceload with verdict verification, require 100% success,
# then SIGTERM and require a clean (exit 0) graceful drain — all inside a
# wall budget.
#
# Usage: scripts/server_smoke.sh [requests] [concurrency]
set -e
cd "$(dirname "$0")/.."

n=${1:-32}
conc=${2:-8}
bin=$(mktemp -d /tmp/tracerd_smoke.XXXXXX)
log="$bin/tracerd.log"
access="$bin/access.ndjson"
trap 'kill "$pid" 2>/dev/null; rm -rf "$bin"' EXIT

go build -o "$bin/tracerd" ./cmd/tracerd
go build -o "$bin/traceload" ./cmd/traceload

"$bin/tracerd" -addr 127.0.0.1:0 -access-log "$access" > "$log" 2>&1 &
pid=$!

# The daemon prints "tracerd: listening on <addr>" once bound.
addr=""
for i in $(seq 1 100); do
	addr=$(sed -n 's/^tracerd: listening on //p' "$log")
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || { echo "tracerd died at startup:"; cat "$log"; exit 1; }
	sleep 0.1
done
[ -n "$addr" ] || { echo "tracerd never reported its address"; cat "$log"; exit 1; }

"$bin/traceload" -addr "$addr" -bench tsp -client typestate \
	-n "$n" -concurrency "$conc" -verify -require-success
"$bin/traceload" -addr "$addr" -bench tsp -client escape \
	-n "$n" -concurrency "$conc" -verify -require-success

# Graceful drain: SIGTERM must produce a clean exit within the wall budget.
kill -TERM "$pid"
deadline=$(( $(date +%s) + 30 ))
while kill -0 "$pid" 2>/dev/null; do
	if [ "$(date +%s)" -ge "$deadline" ]; then
		echo "tracerd did not drain within 30s"; cat "$log"; exit 1
	fi
	sleep 0.2
done
set +e
wait "$pid" 2>/dev/null
status=$?
set -e
if [ "$status" -ne 0 ]; then
	echo "tracerd exited $status after SIGTERM:"; cat "$log"; exit 1
fi
grep -q '"kind":"query_resolved"' "$access" || {
	echo "access log has no query_resolved events"; exit 1; }
echo "server_smoke: OK ($((n * 2)) requests, clean drain)"
