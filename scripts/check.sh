#!/bin/sh
# Tier-1 gate (same as `make check`): format, vet, build, race-enabled tests.
set -e
cd "$(dirname "$0")/.."

out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi
go vet ./...
go build ./...
go test -race ./...
echo "check: OK"
