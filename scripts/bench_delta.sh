#!/bin/sh
# Perf gate: regenerate the paperbench measurement with the committed budget
# and fail if any gated experiment wall regressed beyond its per-experiment
# threshold against the committed BENCH_paperbench.json baseline. The
# thresholds live in cmd/benchdelta's default -keys: the primary walls
# (fig12, fig13, nullness, batch) gate at the default percentage, the noisier
# warm-start walls (fig12warm, editchain) at their own looser bounds.
#
# Usage: scripts/bench_delta.sh [default-max-regress-percent]
set -e
cd "$(dirname "$0")/.."

max=${1:-25}
fresh=$(mktemp /tmp/bench_delta.XXXXXX.json)
trap 'rm -f "$fresh"' EXIT

# Same budget as `make bench-json`, so fresh and committed are comparable.
go run ./cmd/paperbench -iters 100 -timeout 1s -bench-json "$fresh" > /dev/null

go run ./cmd/benchdelta -old BENCH_paperbench.json -new "$fresh" -max-regress "$max"
echo "bench_delta: OK (all gated walls within their thresholds)"
